//! Experiment harness shared by the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1`  | Table 1 / Fig. 7 — balanced weight contributions |
//! | `table2`  | Table 2 — % improvement, UNLIMITED, all systems × benchmarks |
//! | `table3`  | Table 3 — MDG detail across processor models |
//! | `table4`  | Table 4 — spill-instruction percentages |
//! | `table5`  | Table 5 — the N(30,5) pathology |
//! | `figure2` | Fig. 2 — the three example schedules |
//! | `figure3` | Fig. 3 — interlocks vs actual latency for those schedules |
//!
//! Run them with `cargo run --release -p bsched-bench --bin table2`.
//! Every binary honours `BSCHED_RUNS` (simulation runs per block,
//! default 30) and `BSCHED_SEED` (master seed, default matches
//! `EvalConfig::default`), so results are reproducible and a quick smoke
//! run is one environment variable away. `BSCHED_THREADS` caps the
//! worker threads used by [`run_cells`] and the per-block parallelism in
//! `evaluate` — any value produces identical output, because all
//! randomness is counter-split from the master seed and results are
//! folded in deterministic order.

#![warn(missing_docs)]

pub mod journal;

use std::collections::HashMap;
use std::time::Duration;

use bsched_analyze::FailureKind;
use bsched_core::Ratio;
use bsched_cpusim::ProcessorModel;
use bsched_faults::{fault_point, Site};
use bsched_memsim::{CacheModel, LatencyModel, MemorySystem, MixedModel, NetworkModel};
use bsched_pipeline::{
    compare, evaluate, try_evaluate, CompiledProgram, EvalConfig, Pipeline, PipelineError,
    ProgramEval, SchedulerChoice,
};
use bsched_stats::Improvement;
use bsched_workload::Benchmark;

use journal::{Journal, JournalEntry};

/// One Table 2 row: a memory system plus the optimistic latency the
/// traditional baseline assumes for it.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// The memory system simulated.
    pub system: MemorySystem,
    /// The traditional scheduler's assumed load latency.
    pub optimistic: Ratio,
}

impl SystemRow {
    /// Display label, e.g. `L80(2,5) @ 2 3/5`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} @ {}", self.system.name(), self.optimistic)
    }
}

/// The 17 rows of Table 2, in paper order: each cache system at its hit
/// latency and at its effective access time, the seven networks at their
/// means, and the mixed system at hit latency and effective latency.
#[must_use]
pub fn table2_rows() -> Vec<SystemRow> {
    let mut rows = Vec::new();
    let caches = [
        (CacheModel::l80_5(), Ratio::new(13, 5)),  // 2.6
        (CacheModel::l80_10(), Ratio::new(18, 5)), // 3.6
        (CacheModel::l95_5(), Ratio::new(43, 20)), // 2.15
        (CacheModel::l95_10(), Ratio::new(12, 5)), // 2.4
    ];
    for (cache, effective) in caches {
        rows.push(SystemRow {
            system: cache.into(),
            optimistic: Ratio::from_int(2),
        });
        rows.push(SystemRow {
            system: cache.into(),
            optimistic: effective,
        });
    }
    for net in NetworkModel::paper_configs() {
        let mean = Ratio::from_int(net.optimistic_latency() as i64);
        rows.push(SystemRow {
            system: net.into(),
            optimistic: mean,
        });
    }
    let mixed = MixedModel::l80_n30_5();
    rows.push(SystemRow {
        system: mixed.into(),
        optimistic: Ratio::from_int(2),
    });
    rows.push(SystemRow {
        system: mixed.into(),
        optimistic: Ratio::new(38, 5),
    }); // 7.6
    rows
}

/// Evaluation configuration from the environment (`BSCHED_RUNS`,
/// `BSCHED_SEED`), defaulting to the paper's protocol.
#[must_use]
pub fn eval_config(processor: ProcessorModel) -> EvalConfig {
    let mut cfg = EvalConfig {
        processor,
        ..EvalConfig::default()
    };
    if let Ok(runs) = std::env::var("BSCHED_RUNS") {
        if let Ok(runs) = runs.parse::<u32>() {
            cfg.runs = runs.max(2);
        }
    }
    if let Ok(seed) = std::env::var("BSCHED_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            cfg.seed = seed;
        }
    }
    cfg
}

/// Result of one (benchmark, system, processor) comparison cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Paired percentage improvement of balanced over traditional.
    pub improvement: Improvement,
    /// Traditional evaluation (runtime, interlocks, instructions).
    pub traditional: ProgramEval,
    /// Balanced evaluation.
    pub balanced: ProgramEval,
    /// Traditional spill percentage.
    pub traditional_spill_percent: f64,
    /// Balanced spill percentage.
    pub balanced_spill_percent: f64,
}

/// Compiles and evaluates one benchmark under one system row and
/// processor model, returning the full comparison cell.
#[must_use]
pub fn run_cell(bench: &Benchmark, row: &SystemRow, processor: ProcessorModel) -> Cell {
    let pipeline = Pipeline::default();
    let balanced = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .expect("compile balanced");
    let traditional = pipeline
        .compile(
            bench.function(),
            &SchedulerChoice::traditional(row.optimistic),
        )
        .expect("compile traditional");
    run_cell_compiled(&balanced, &traditional, row, processor)
}

/// Evaluates one comparison cell from already-compiled programs.
///
/// Compilation does not depend on the memory system or processor model
/// being simulated, so callers sweeping one benchmark across many
/// systems (every table binary) can compile once and evaluate many
/// times; [`run_cells`] does exactly that.
#[must_use]
pub fn run_cell_compiled(
    balanced: &CompiledProgram,
    traditional: &CompiledProgram,
    row: &SystemRow,
    processor: ProcessorModel,
) -> Cell {
    let cfg = eval_config(processor);
    let b_eval = evaluate(balanced, &row.system, &cfg);
    let t_eval = evaluate(traditional, &row.system, &cfg);
    Cell {
        improvement: compare(&t_eval, &b_eval),
        traditional_spill_percent: traditional.spill_percent(),
        balanced_spill_percent: balanced.spill_percent(),
        traditional: t_eval,
        balanced: b_eval,
    }
}

/// [`run_cell_compiled`] with validation findings surfaced as errors.
///
/// # Errors
///
/// Propagates the first finding from
/// [`try_evaluate`](bsched_pipeline::try_evaluate) (only possible at
/// [`ValidationLevel::Full`](bsched_verify::ValidationLevel::Full)).
pub fn try_run_cell_compiled(
    balanced: &CompiledProgram,
    traditional: &CompiledProgram,
    row: &SystemRow,
    processor: ProcessorModel,
) -> Result<Cell, PipelineError> {
    let cfg = eval_config(processor);
    let b_eval = try_evaluate(balanced, &row.system, &cfg)?;
    let t_eval = try_evaluate(traditional, &row.system, &cfg)?;
    Ok(Cell {
        improvement: compare(&t_eval, &b_eval),
        traditional_spill_percent: traditional.spill_percent(),
        balanced_spill_percent: balanced.spill_percent(),
        traditional: t_eval,
        balanced: b_eval,
    })
}

/// One entry in a table's work list: which benchmark to evaluate under
/// which system row and processor model.
#[derive(Debug, Clone, Copy)]
pub struct CellJob<'a> {
    /// Benchmark to compile and simulate.
    pub bench: &'a Benchmark,
    /// Memory system plus the traditional scheduler's assumed latency.
    pub row: &'a SystemRow,
    /// Processor model to simulate under.
    pub processor: ProcessorModel,
}

/// One cell's result from [`run_cells_checked`]: the evaluated cell, or
/// the reason this cell (and only this cell) could not be produced.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell evaluated normally.
    Ok(Cell),
    /// The cell failed — a panic, a compile error, or a validation
    /// finding — and failed again on a serial retry.
    Failed {
        /// Human-readable reason, rendered from the error or panic.
        reason: String,
    },
}

impl CellOutcome {
    /// The cell, if it evaluated normally.
    #[must_use]
    pub fn as_ok(&self) -> Option<&Cell> {
        match self {
            CellOutcome::Ok(cell) => Some(cell),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// The failure reason, if the cell failed.
    #[must_use]
    pub fn failure(&self) -> Option<&str> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Failed { reason } => Some(reason),
        }
    }
}

/// Renders a failure reason as a table cell: `FAILED(<reason>)`,
/// truncated to the reason's first line and at most 40 characters so a
/// broken cell cannot wreck the table layout.
#[must_use]
pub fn failure_label(reason: &str) -> String {
    let first_line = reason.lines().next().unwrap_or("");
    let mut short: String = first_line.chars().take(40).collect();
    if first_line.chars().count() > 40 {
        short.push('…');
    }
    format!("FAILED({short})")
}

/// How one cell reached its terminal state in [`run_cells_reported`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// Evaluated cleanly on the first attempt.
    Ok,
    /// Failed at least once, then evaluated cleanly on a bounded retry.
    Recovered {
        /// Total attempts including the successful one (≥ 2).
        attempts: u32,
    },
    /// Every attempt failed; the last error is reported.
    Failed {
        /// Stable failure-vocabulary id.
        kind: FailureKind,
        /// Human-readable reason from the last attempt.
        reason: String,
    },
    /// Retries were skipped because the benchmark already accumulated
    /// [`QUARANTINE_THRESHOLD`] unrecovered failures this run.
    Quarantined {
        /// Why the cell was quarantined, including its own first error.
        reason: String,
    },
}

/// One cell's structured outcome from [`run_cells_reported`]: terminal
/// status, the evaluated cell when one exists, and whether it was
/// resumed from a prior run's journal instead of re-evaluated.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Stable identity: `<benchmark>|<system @ optimistic>|<processor>`.
    pub key: String,
    /// True when the value came from the `BSCHED_JOURNAL` file.
    pub resumed: bool,
    /// Terminal status.
    pub status: CellStatus,
    /// The evaluated cell, for `Ok`/`Recovered` (and resumed) outcomes.
    pub cell: Option<Cell>,
}

impl CellReport {
    /// The cell, if the evaluation produced one.
    #[must_use]
    pub fn cell(&self) -> Option<&Cell> {
        self.cell.as_ref()
    }

    /// The failure reason, if the cell degraded.
    #[must_use]
    pub fn failure_reason(&self) -> Option<&str> {
        match &self.status {
            CellStatus::Ok | CellStatus::Recovered { .. } => None,
            CellStatus::Failed { reason, .. } | CellStatus::Quarantined { reason } => Some(reason),
        }
    }

    /// The failure-vocabulary id, if the cell degraded.
    #[must_use]
    pub fn failure_kind(&self) -> Option<FailureKind> {
        match &self.status {
            CellStatus::Ok | CellStatus::Recovered { .. } => None,
            CellStatus::Failed { kind, .. } => Some(*kind),
            CellStatus::Quarantined { .. } => Some(FailureKind::Quarantined),
        }
    }
}

/// Unrecovered failures per benchmark before its remaining failed cells
/// are quarantined (reported without burning retries).
pub const QUARANTINE_THRESHOLD: u32 = 2;

/// Stable identity of one cell, used as the fault-injection context key
/// and the journal key.
#[must_use]
pub fn cell_key(job: &CellJob<'_>) -> String {
    format!("{}|{}|{}", job.bench.name(), job.row.label(), job.processor)
}

/// Why one attempt at a cell did not produce a clean value.
#[derive(Debug)]
enum CellError {
    /// A program this cell depends on failed to compile.
    Compile { kind: FailureKind, reason: String },
    /// Evaluation returned a typed pipeline error.
    Pipeline(PipelineError),
    /// The evaluation worker panicked.
    Panic(String),
    /// The wall-clock watchdog fired.
    Timeout(Duration),
    /// A result-perturbing fault fired during the attempt, so the value
    /// (though produced) must not be reported.
    Tainted(String),
}

impl CellError {
    fn kind(&self) -> FailureKind {
        match self {
            CellError::Compile { kind, .. } => *kind,
            CellError::Pipeline(e) => e.failure_kind(),
            CellError::Panic(_) => FailureKind::Panic,
            CellError::Timeout(_) => FailureKind::Timeout,
            CellError::Tainted(_) => FailureKind::Tainted,
        }
    }

    fn reason(&self) -> String {
        match self {
            CellError::Compile { reason, .. } => reason.clone(),
            CellError::Pipeline(e) => e.to_string(),
            CellError::Panic(msg) => format!("panicked: {msg}"),
            CellError::Timeout(limit) => format!("timed out after {limit:?}"),
            CellError::Tainted(sites) => format!("fault injected: {sites}"),
        }
    }
}

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The per-cell wall-clock limit from `BSCHED_TIMEOUT_MS` (`0`/`off`/
/// unset disables the watchdog).
fn timeout_from_env() -> Option<Duration> {
    match std::env::var("BSCHED_TIMEOUT_MS").ok()?.trim() {
        "" | "0" | "off" => None,
        v => v.parse::<u64>().ok().map(Duration::from_millis),
    }
}

/// Fingerprint of everything that determines cell values this run: the
/// journal refuses to resume across a change in any of these.
fn run_fingerprint(keys: &[String]) -> String {
    let cfg = eval_config(ProcessorModel::Unlimited);
    // FNV-1a over the ordered key list captures the job-list shape.
    let mut shape: u64 = 0xcbf2_9ce4_8422_2325;
    for key in keys {
        for b in key.as_bytes() {
            shape = (shape ^ u64::from(*b)).wrapping_mul(0x100_0000_01b3);
        }
        shape = (shape ^ u64::from(b'\n')).wrapping_mul(0x100_0000_01b3);
    }
    let plan = bsched_faults::installed_plan().map_or_else(|| "none".to_owned(), |p| p.to_string());
    format!(
        "v1;seed={};runs={};cells={};shape={shape:016x};faults={plan}",
        cfg.seed,
        cfg.runs,
        keys.len()
    )
}

/// Runs every job, in parallel across `BSCHED_THREADS` workers (default:
/// all cores), returning cells in job order.
///
/// Each cell is a pure function of its job — compilation is
/// deterministic and every simulation stream is counter-split from the
/// master seed — so this is bit-identical to calling [`run_cell`] in a
/// loop, and `BSCHED_THREADS=1` does exactly that. Table binaries fan
/// out here, across cells; the per-block parallelism inside
/// [`evaluate`](bsched_pipeline::evaluate) detects the nesting and stays
/// serial.
///
/// # Panics
///
/// Panics on the first failed cell; harness code that wants graceful
/// degradation uses [`run_cells_checked`] instead.
#[must_use]
pub fn run_cells(jobs: &[CellJob<'_>]) -> Vec<Cell> {
    run_cells_checked(jobs)
        .into_iter()
        .map(|outcome| match outcome {
            CellOutcome::Ok(cell) => cell,
            CellOutcome::Failed { reason } => panic!("cell failed: {reason}"),
        })
        .collect()
}

/// [`run_cells`] with per-cell fault isolation: a panic, compile error,
/// or validation finding in one cell is retried with backoff and, if it
/// persists, reported as [`CellOutcome::Failed`] — every other cell
/// still evaluates. Thin compatibility wrapper over
/// [`run_cells_reported`], which also exposes retry/quarantine/resume
/// detail.
#[must_use]
pub fn run_cells_checked(jobs: &[CellJob<'_>]) -> Vec<CellOutcome> {
    run_cells_reported(jobs)
        .into_iter()
        .map(|report| match (report.cell, report.status) {
            (Some(cell), _) => CellOutcome::Ok(cell),
            (None, CellStatus::Failed { reason, .. } | CellStatus::Quarantined { reason }) => {
                CellOutcome::Failed { reason }
            }
            (None, status) => CellOutcome::Failed {
                reason: format!("cell produced no value in status {status:?}"),
            },
        })
        .collect()
}

/// The full watchdog/recovery harness: runs every job with per-cell
/// fault isolation, bounded retry with exponential backoff, quarantine,
/// optional wall-clock timeouts, and crash-safe journaling.
///
/// Behaviour knobs (all environment variables):
///
/// - `BSCHED_RETRIES` (default 1) — serial retries after the parallel
///   first attempt; backoff before retry *r* is
///   `BSCHED_BACKOFF_MS × 2^(r-1)` ms (default base 25, capped at 2 s).
/// - `BSCHED_TIMEOUT_MS` (default off) — per-attempt wall-clock budget,
///   enforced by [`bsched_par::run_with_timeout`] with cooperative
///   cancellation of the abandoned simulation.
/// - `BSCHED_JOURNAL` (default off) — path of a crash-safe
///   [`journal`](journal::Journal); cells recorded by a previous run
///   with the same fingerprint are resumed, not re-evaluated.
/// - `BSCHED_FAULTS` (default off) — a [`bsched_faults::FaultPlan`]
///   spec; installed once per process.
///
/// Invariants:
///
/// - With no fault plan installed, results are bit-identical to
///   [`run_cell`] in a loop, for any thread count, retry count, or
///   resume pattern.
/// - An attempt during which a result-perturbing fault (latency jitter,
///   simulator stall) fired is *tainted*: its value is discarded and the
///   cell either recovers on a clean retry or reports a typed
///   [`CellStatus::Failed`] — never a silently wrong number.
/// - After a benchmark accumulates [`QUARANTINE_THRESHOLD`] unrecovered
///   failures, its remaining failed cells skip retries and report
///   [`CellStatus::Quarantined`].
#[must_use]
pub fn run_cells_reported(jobs: &[CellJob<'_>]) -> Vec<CellReport> {
    bsched_faults::init_from_env();
    let keys: Vec<String> = jobs.iter().map(cell_key).collect();
    let journal = Journal::from_env(&run_fingerprint(&keys));
    let timeout = timeout_from_env();

    // Compilation is independent of the memory system and processor
    // model: the balanced schedule depends only on the benchmark, the
    // traditional schedule only on (benchmark, optimistic latency).
    // Table job lists repeat those pairs heavily — Table 2 alone names
    // each benchmark's balanced program 17 times — so each distinct
    // program is compiled once and shared across its cells. Compilation
    // is deterministic, making the sharing bit-identical to compiling
    // per cell as [`run_cell`] does.
    #[derive(PartialEq, Eq, Hash)]
    enum Key {
        Balanced(usize),
        Traditional(usize, Ratio),
    }
    let mut index: HashMap<Key, usize> = HashMap::new();
    let mut tasks: Vec<(&Benchmark, SchedulerChoice)> = Vec::new();
    let mut refs: Vec<(usize, usize)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let bench_key = std::ptr::from_ref(job.bench) as usize;
        let balanced = *index.entry(Key::Balanced(bench_key)).or_insert_with(|| {
            tasks.push((job.bench, SchedulerChoice::balanced()));
            tasks.len() - 1
        });
        let traditional = *index
            .entry(Key::Traditional(bench_key, job.row.optimistic))
            .or_insert_with(|| {
                tasks.push((job.bench, SchedulerChoice::traditional(job.row.optimistic)));
                tasks.len() - 1
            });
        refs.push((balanced, traditional));
    }

    // Compile each distinct program once, with panics and errors caught
    // per program; a failed compile only poisons the cells that need it.
    // Each compile runs under a `compile|<benchmark>|<scheduler>` fault
    // context so plans can target it (parser reject, spill exhaustion).
    let compile_one = |task: &(&Benchmark, SchedulerChoice), attempt: u32| {
        let ctx = format!("compile|{}|{}", task.0.name(), task.1.name());
        bsched_faults::with_cell_context(&ctx, attempt, || {
            Pipeline::default()
                .compile(task.0.function(), &task.1)
                .map_err(|e| (e.failure_kind(), e.to_string()))
        })
    };
    let compiled: Vec<Result<CompiledProgram, (FailureKind, String)>> =
        bsched_par::parallel_map_catch(&tasks, |_, task| compile_one(task, 1))
            .into_iter()
            .enumerate()
            .map(|(k, caught)| {
                let first = caught.unwrap_or_else(|p| Err((FailureKind::Panic, p.to_string())));
                match first {
                    Ok(program) => Ok(program),
                    // Retry once serially: rules out transient causes
                    // (an injected fault with a limit, resource
                    // exhaustion under full fan-out) before every
                    // dependent cell is written off.
                    Err(_) => bsched_par::parallel_map_catch(&tasks[k..=k], |_, task| {
                        compile_one(task, 2)
                    })
                    .pop()
                    .expect("one result per item")
                    .unwrap_or_else(|p| Err((FailureKind::Panic, p.to_string()))),
                }
            })
            .collect();

    // One attempt at one cell, under its fault context. Any fire of a
    // result-perturbing site during the attempt taints it.
    let attempt = |i: usize, attempt_no: u32| -> Result<Cell, CellError> {
        let (bi, ti) = refs[i];
        let job = &jobs[i];
        let key = &keys[i];
        bsched_faults::with_cell_context(key, attempt_no, || {
            // Both the slow-cell and eval-panic sites live *inside* the
            // timed region, so the wall-clock watchdog covers them.
            fn eval_body(
                key: &str,
                balanced: &CompiledProgram,
                traditional: &CompiledProgram,
                row: &SystemRow,
                processor: ProcessorModel,
            ) -> Result<Cell, PipelineError> {
                if let Some(fault) = fault_point!(Site::SlowCell) {
                    std::thread::sleep(Duration::from_millis(fault.arg.min(10_000)));
                }
                if fault_point!(Site::EvalPanic).is_some() {
                    panic!("injected failure (eval-panic in {key})");
                }
                try_run_cell_compiled(balanced, traditional, row, processor)
            }
            let balanced = compiled[bi]
                .as_ref()
                .map_err(|(kind, e)| CellError::Compile {
                    kind: *kind,
                    reason: format!("compiling {}: {e}", tasks[bi].1.name()),
                })?;
            let traditional = compiled[ti]
                .as_ref()
                .map_err(|(kind, e)| CellError::Compile {
                    kind: *kind,
                    reason: format!("compiling {}: {e}", tasks[ti].1.name()),
                })?;
            let cell = match timeout {
                Some(limit) => {
                    // The watchdog thread needs owned inputs; cloning the
                    // compiled programs costs nothing next to the limit
                    // we are prepared to wait.
                    let key = key.clone();
                    let b = balanced.clone();
                    let t = traditional.clone();
                    let row = job.row.clone();
                    let processor = job.processor;
                    bsched_par::run_with_timeout(limit, move || {
                        eval_body(&key, &b, &t, &row, processor)
                    })
                    .map_err(|t| CellError::Timeout(t.limit))?
                    .map_err(CellError::Pipeline)?
                }
                None => eval_body(key, balanced, traditional, job.row, job.processor)
                    .map_err(CellError::Pipeline)?,
            };
            let perturbing: Vec<&str> = bsched_faults::take_fired(key, attempt_no)
                .iter()
                .filter(|f| matches!(f.site, Site::LatencyJitter | Site::SimStall))
                .map(|f| f.site.id())
                .collect();
            if perturbing.is_empty() {
                Ok(cell)
            } else {
                Err(CellError::Tainted(perturbing.join(", ")))
            }
        })
    };
    let caught_to_err = |p: bsched_par::CaughtPanic| CellError::Panic(p.message().to_owned());

    // First attempt: every not-yet-journaled cell, in parallel. Clean
    // results are journaled as they land — a kill mid-table loses at
    // most the in-flight cells.
    let pending: Vec<usize> = (0..jobs.len())
        .filter(|&i| {
            journal
                .as_ref()
                .is_none_or(|j| j.lookup(&keys[i]).is_none())
        })
        .collect();
    let mut firsts: Vec<Option<Result<Cell, CellError>>> = (0..jobs.len()).map(|_| None).collect();
    let first_results = bsched_par::parallel_map_catch(&pending, |_, &i| {
        let result = attempt(i, 1);
        if let (Ok(cell), Some(j)) = (&result, journal.as_ref()) {
            j.record(&keys[i], &JournalEntry::Ok(cell.clone()));
        }
        result
    });
    for (&slot, caught) in pending.iter().zip(first_results) {
        firsts[slot] = Some(caught.unwrap_or_else(|p| Err(caught_to_err(p))));
    }

    // Recovery pass: serial, in job order, so retry/quarantine decisions
    // are deterministic for any thread count.
    let retries = env_u32("BSCHED_RETRIES", 1);
    let backoff_ms = env_u64("BSCHED_BACKOFF_MS", 25);
    let mut strikes: HashMap<String, u32> = HashMap::new();
    let mut reports = Vec::with_capacity(jobs.len());
    let record_failed = |key: &str, kind: FailureKind, reason: &str| {
        if let Some(j) = journal.as_ref() {
            j.record(
                key,
                &JournalEntry::Failed {
                    kind,
                    reason: reason.to_owned(),
                },
            );
        }
    };
    for (i, first) in firsts.into_iter().enumerate() {
        let key = keys[i].clone();
        let report = match first {
            None => {
                // Resumed from the journal.
                let entry = journal
                    .as_ref()
                    .and_then(|j| j.lookup(&key))
                    .expect("unattempted cells come from the journal");
                match entry {
                    JournalEntry::Ok(cell) => CellReport {
                        key,
                        resumed: true,
                        status: CellStatus::Ok,
                        cell: Some(cell),
                    },
                    JournalEntry::Failed { kind, reason } => CellReport {
                        key,
                        resumed: true,
                        status: if kind == FailureKind::Quarantined {
                            CellStatus::Quarantined { reason }
                        } else {
                            CellStatus::Failed { kind, reason }
                        },
                        cell: None,
                    },
                }
            }
            Some(Ok(cell)) => CellReport {
                key,
                resumed: false,
                status: CellStatus::Ok,
                cell: Some(cell),
            },
            Some(Err(mut err)) => {
                let bench = jobs[i].bench.name().to_owned();
                let prior = strikes.get(&bench).copied().unwrap_or(0);
                if prior >= QUARANTINE_THRESHOLD {
                    let reason = format!(
                        "{bench} quarantined after {prior} unrecovered failures; this cell's first error: {}",
                        err.reason()
                    );
                    record_failed(&key, FailureKind::Quarantined, &reason);
                    CellReport {
                        key,
                        resumed: false,
                        status: CellStatus::Quarantined { reason },
                        cell: None,
                    }
                } else {
                    let mut recovered = None;
                    for retry in 0..retries {
                        let delay = backoff_ms.saturating_mul(1 << retry.min(6)).min(2_000);
                        if delay > 0 {
                            std::thread::sleep(Duration::from_millis(delay));
                        }
                        let caught =
                            bsched_par::parallel_map_catch(&[i], |_, &i| attempt(i, retry + 2))
                                .pop()
                                .expect("one result per item");
                        match caught.unwrap_or_else(|p| Err(caught_to_err(p))) {
                            Ok(cell) => {
                                recovered = Some((cell, retry + 2));
                                break;
                            }
                            Err(e) => err = e,
                        }
                    }
                    match recovered {
                        Some((cell, attempts)) => {
                            if let Some(j) = journal.as_ref() {
                                j.record(&key, &JournalEntry::Ok(cell.clone()));
                            }
                            CellReport {
                                key,
                                resumed: false,
                                status: CellStatus::Recovered { attempts },
                                cell: Some(cell),
                            }
                        }
                        None => {
                            *strikes.entry(bench).or_insert(0) += 1;
                            let (kind, reason) = (err.kind(), err.reason());
                            record_failed(&key, kind, &reason);
                            CellReport {
                                key,
                                resumed: false,
                                status: CellStatus::Failed { kind, reason },
                                cell: None,
                            }
                        }
                    }
                }
            }
        };
        reports.push(report);
    }
    reports
}

/// Prints resume/retry/failure detail from a [`run_cells_reported`] pass
/// to stderr and returns the failure count; table binaries exit non-zero
/// when it is positive.
pub fn report_cell_reports(reports: &[CellReport]) -> usize {
    let resumed = reports.iter().filter(|r| r.resumed).count();
    if resumed > 0 {
        eprintln!(
            "resumed {resumed} of {} cells from the journal",
            reports.len()
        );
    }
    for report in reports {
        if let CellStatus::Recovered { attempts } = report.status {
            eprintln!("RECOVERED cell on attempt {attempts}: {}", report.key);
        }
    }
    let mut failures = 0;
    for report in reports {
        if let Some(reason) = report.failure_reason() {
            failures += 1;
            let kind = report
                .failure_kind()
                .map_or_else(String::new, |k| format!(" [{k}]"));
            eprintln!("FAILED cell{kind}: {}: {reason}", report.key);
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} of {} cells failed; the rest are reported above",
            reports.len()
        );
    }
    failures
}

/// Prints every failed cell to stderr (benchmark, system, processor and
/// reason) and returns the failure count; table binaries exit non-zero
/// when it is positive.
pub fn report_cell_failures(jobs: &[CellJob<'_>], outcomes: &[CellOutcome]) -> usize {
    let mut failures = 0;
    for (job, outcome) in jobs.iter().zip(outcomes) {
        if let Some(reason) = outcome.failure() {
            failures += 1;
            eprintln!(
                "FAILED cell: {} under {} on {}: {reason}",
                job.bench.name(),
                job.row.label(),
                job.processor,
            );
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} of {} cells failed; the rest are reported above",
            jobs.len()
        );
    }
    failures
}

/// Serialises a table as a JSON object (`{"title", "header", "rows"}`)
/// for external plotting tools. Strings are escaped per RFC 8259.
#[must_use]
pub fn table_to_json(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    let list = |cells: &[String]| {
        format!(
            "[{}]",
            cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        )
    };
    format!(
        "{{\"title\":{},\"header\":{},\"rows\":[{}]}}",
        esc(title),
        list(header),
        rows.iter().map(|r| list(r)).collect::<Vec<_>>().join(",")
    )
}

/// Pretty-prints a header followed by aligned rows — or, when
/// `BSCHED_JSON=1`, one machine-readable JSON object per table.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    if std::env::var("BSCHED_JSON").as_deref() == Ok("1") {
        println!("{}", table_to_json(title, header, rows));
        return;
    }
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_faults::{FaultPlan, FaultSpec};
    use bsched_workload::{perfect, perfect_club};

    /// Serialises the tests that read or write `BSCHED_*` environment
    /// variables; the test harness runs tests on concurrent threads.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        ENV_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn table2_has_seventeen_rows_in_paper_order() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 17);
        assert_eq!(rows[0].label(), "L80(2,5) @ 2");
        assert_eq!(rows[1].label(), "L80(2,5) @ 2 3/5");
        assert_eq!(rows[8].label(), "N(2,2) @ 2");
        assert_eq!(rows[15].label(), "L80-N(30,5) @ 2");
        assert_eq!(rows[16].label(), "L80-N(30,5) @ 7 3/5");
    }

    #[test]
    fn run_cell_produces_consistent_results() {
        let _guard = env_lock();
        std::env::remove_var("BSCHED_RUNS");
        let bench = perfect::track();
        let row = &table2_rows()[8]; // N(2,2)
        let cell = run_cell(&bench, row, ProcessorModel::Unlimited);
        assert!(cell.improvement.mean_percent.is_finite());
        assert!(cell.traditional.mean_runtime > 0.0);
        assert!(cell.balanced.mean_runtime > 0.0);
        assert!(cell.traditional_spill_percent >= 0.0);
    }

    #[test]
    fn threads_env_does_not_change_results() {
        // One full Table-2 row: every benchmark under L80(2,5), serial
        // (BSCHED_THREADS=1) versus maximally parallel, bit-identical.
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "5");
        let benchmarks = perfect_club();
        let rows = table2_rows();
        let row = &rows[0];
        let jobs: Vec<CellJob> = benchmarks
            .iter()
            .map(|bench| CellJob {
                bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        std::env::set_var("BSCHED_THREADS", "1");
        let serial = run_cells(&jobs);
        std::env::remove_var("BSCHED_THREADS");
        let parallel = run_cells(&jobs);
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.improvement.mean_percent, p.improvement.mean_percent);
            assert_eq!(
                s.traditional.bootstrap_runtimes,
                p.traditional.bootstrap_runtimes
            );
            assert_eq!(s.balanced.bootstrap_runtimes, p.balanced.bootstrap_runtimes);
            assert_eq!(s.balanced.mean_interlocks, p.balanced.mean_interlocks);
        }
    }

    /// A benchmark whose block already names a physical register, which
    /// the allocator rejects — a stand-in for any corrupted program.
    fn corrupted_benchmark() -> Benchmark {
        use bsched_ir::{Function, Inst, Opcode, PhysReg, RegClass};
        let phys = PhysReg::new(RegClass::Int, 0).into();
        let block = bsched_ir::BasicBlock::new(
            "bad",
            vec![Inst::new(Opcode::Li, vec![phys], vec![], None)],
        );
        Benchmark::new("BROKEN", Function::new("BROKEN", vec![block]))
    }

    #[test]
    fn corrupted_benchmark_degrades_to_a_failed_cell() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        let good = perfect::track();
        let bad = corrupted_benchmark();
        let rows = table2_rows();
        let row = &rows[8]; // N(2,2)
        let jobs: Vec<CellJob> = [&good, &bad, &good]
            .into_iter()
            .map(|bench| CellJob {
                bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        let outcomes = run_cells_checked(&jobs);
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].as_ok().is_some(), "good cell must survive");
        assert!(outcomes[2].as_ok().is_some(), "good cell must survive");
        let reason = outcomes[1].failure().expect("bad cell must fail");
        assert!(
            reason.contains("physical registers"),
            "reason should name the allocator's complaint: {reason}"
        );
        assert!(failure_label(reason).starts_with("FAILED("));
        assert_eq!(report_cell_failures(&jobs, &outcomes), 1);
    }

    #[test]
    fn injected_panic_fails_the_same_cells_serial_and_parallel() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        std::env::set_var("BSCHED_BACKOFF_MS", "0");
        let benchmarks = perfect_club();
        let rows = table2_rows();
        let row = &rows[8]; // N(2,2)
        let jobs: Vec<CellJob> = benchmarks
            .iter()
            .map(|bench| CellJob {
                bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        // An unbounded eval-panic plan keyed to one benchmark: every
        // attempt at its cell panics, so retries exhaust and exactly
        // that cell degrades.
        bsched_faults::install(
            FaultPlan::seeded(7)
                .with(FaultSpec::always(Site::EvalPanic).with_key(benchmarks[2].name())),
        );
        std::env::set_var("BSCHED_THREADS", "1");
        let serial = run_cells_checked(&jobs);
        std::env::set_var("BSCHED_THREADS", "4");
        bsched_faults::install(
            FaultPlan::seeded(7)
                .with(FaultSpec::always(Site::EvalPanic).with_key(benchmarks[2].name())),
        );
        let parallel = run_cells_checked(&jobs);
        bsched_faults::clear();
        std::env::remove_var("BSCHED_THREADS");
        std::env::remove_var("BSCHED_BACKOFF_MS");
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            match (s, p) {
                (CellOutcome::Ok(s), CellOutcome::Ok(p)) => {
                    assert_eq!(
                        s.improvement.mean_percent, p.improvement.mean_percent,
                        "surviving cell {i} differs between serial and parallel"
                    );
                    assert_eq!(s.balanced.bootstrap_runtimes, p.balanced.bootstrap_runtimes);
                }
                (CellOutcome::Failed { reason: s }, CellOutcome::Failed { reason: p }) => {
                    assert_eq!(i, 2, "only the injected cell may fail");
                    assert_eq!(s, p);
                    assert!(s.contains("injected failure"), "{s}");
                }
                _ => panic!("cell {i}: serial and parallel outcomes disagree"),
            }
        }
    }

    #[test]
    fn transient_panic_recovers_on_retry_bit_identically() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        std::env::set_var("BSCHED_BACKOFF_MS", "0");
        let bench = perfect::track();
        let rows = table2_rows();
        let jobs = [CellJob {
            bench: &bench,
            row: &rows[8],
            processor: ProcessorModel::Unlimited,
        }];
        bsched_faults::clear();
        let clean = run_cells_reported(&jobs);
        // limit=1 → the fault fires exactly once; the retry runs clean.
        bsched_faults::install(
            FaultPlan::seeded(3).with(
                FaultSpec::always(Site::EvalPanic)
                    .with_key("TRACK")
                    .with_limit(1),
            ),
        );
        let faulted = run_cells_reported(&jobs);
        bsched_faults::clear();
        std::env::remove_var("BSCHED_BACKOFF_MS");
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(clean[0].status, CellStatus::Ok);
        assert_eq!(faulted[0].status, CellStatus::Recovered { attempts: 2 });
        let (a, b) = (clean[0].cell().unwrap(), faulted[0].cell().unwrap());
        assert_eq!(
            a.improvement.mean_percent.to_bits(),
            b.improvement.mean_percent.to_bits(),
            "recovered cell must be bit-identical to the fault-free run"
        );
        assert_eq!(a.balanced.bootstrap_runtimes, b.balanced.bootstrap_runtimes);
    }

    #[test]
    fn tainted_jitter_is_never_reported_as_a_clean_number() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        std::env::set_var("BSCHED_BACKOFF_MS", "0");
        let bench = perfect::track();
        let rows = table2_rows();
        let jobs = [CellJob {
            bench: &bench,
            row: &rows[8], // N(2,2): unbounded support, jitter perturbs
            processor: ProcessorModel::Unlimited,
        }];
        // Unbounded jitter plan: every attempt is tainted, so the cell
        // must degrade to a typed failure rather than report perturbed
        // numbers.
        bsched_faults::install(
            FaultPlan::seeded(11).with(
                FaultSpec::always(Site::LatencyJitter)
                    .with_key("TRACK")
                    .with_arg(500),
            ),
        );
        let reports = run_cells_reported(&jobs);
        bsched_faults::clear();
        std::env::remove_var("BSCHED_BACKOFF_MS");
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(reports[0].failure_kind(), Some(FailureKind::Tainted));
        let reason = reports[0].failure_reason().expect("tainted cell fails");
        assert!(reason.contains("latency-jitter"), "{reason}");
        assert!(
            reports[0].cell().is_none(),
            "no value may escape a tainted cell"
        );
    }

    #[test]
    fn repeated_failures_quarantine_the_benchmark() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        std::env::set_var("BSCHED_BACKOFF_MS", "0");
        let bad = corrupted_benchmark();
        let rows = table2_rows();
        let jobs: Vec<CellJob> = rows[..4]
            .iter()
            .map(|row| CellJob {
                bench: &bad,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        bsched_faults::clear();
        let reports = run_cells_reported(&jobs);
        std::env::remove_var("BSCHED_BACKOFF_MS");
        std::env::remove_var("BSCHED_RUNS");
        assert!(matches!(
            reports[0].status,
            CellStatus::Failed {
                kind: FailureKind::Alloc,
                ..
            }
        ));
        assert!(matches!(
            reports[1].status,
            CellStatus::Failed {
                kind: FailureKind::Alloc,
                ..
            }
        ));
        assert!(
            matches!(reports[2].status, CellStatus::Quarantined { .. }),
            "third failure of the same benchmark is quarantined: {:?}",
            reports[2].status
        );
        assert!(matches!(reports[3].status, CellStatus::Quarantined { .. }));
        assert_eq!(reports[2].failure_kind(), Some(FailureKind::Quarantined));
        assert_eq!(report_cell_reports(&reports), 4);
    }

    #[test]
    fn slow_cell_times_out_as_a_typed_failure() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        std::env::set_var("BSCHED_TIMEOUT_MS", "100");
        std::env::set_var("BSCHED_RETRIES", "0");
        let bench = perfect::track();
        let rows = table2_rows();
        let jobs = [CellJob {
            bench: &bench,
            row: &rows[8],
            processor: ProcessorModel::Unlimited,
        }];
        bsched_faults::install(
            FaultPlan::seeded(5).with(
                FaultSpec::always(Site::SlowCell)
                    .with_key("TRACK")
                    .with_arg(2_000),
            ),
        );
        let reports = run_cells_reported(&jobs);
        bsched_faults::clear();
        std::env::remove_var("BSCHED_RETRIES");
        std::env::remove_var("BSCHED_TIMEOUT_MS");
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(reports[0].failure_kind(), Some(FailureKind::Timeout));
        assert!(
            reports[0].failure_reason().unwrap().contains("timed out"),
            "{:?}",
            reports[0].status
        );
    }

    #[test]
    fn journal_resumes_recorded_cells_bit_identically() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        let bench = perfect::track();
        let rows = table2_rows();
        let jobs: Vec<CellJob> = rows[..2]
            .iter()
            .map(|row| CellJob {
                bench: &bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        let path =
            std::env::temp_dir().join(format!("bsched-bench-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("BSCHED_JOURNAL", &path);
        bsched_faults::clear();
        let fresh = run_cells_reported(&jobs);
        let resumed = run_cells_reported(&jobs);
        std::env::remove_var("BSCHED_JOURNAL");
        std::env::remove_var("BSCHED_RUNS");
        let _ = std::fs::remove_file(&path);
        for (f, r) in fresh.iter().zip(&resumed) {
            assert!(!f.resumed);
            assert!(r.resumed, "second pass must resume from the journal");
            let (a, b) = (f.cell().unwrap(), r.cell().unwrap());
            assert_eq!(
                a.improvement.mean_percent.to_bits(),
                b.improvement.mean_percent.to_bits()
            );
            assert_eq!(a.balanced.bootstrap_runtimes, b.balanced.bootstrap_runtimes);
            assert_eq!(
                a.traditional.bootstrap_runtimes,
                b.traditional.bootstrap_runtimes
            );
        }
        assert_eq!(report_cell_reports(&resumed), 0);
    }

    #[test]
    fn journal_is_discarded_whole_when_any_fingerprint_field_changes() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        let bench = perfect::track();
        let rows = table2_rows();
        let jobs: Vec<CellJob> = rows[..2]
            .iter()
            .map(|row| CellJob {
                bench: &bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        let path = std::env::temp_dir().join(format!(
            "bsched-bench-journal-fp-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("BSCHED_JOURNAL", &path);
        bsched_faults::clear();

        let seed = run_cells_reported(&jobs);
        assert!(seed.iter().all(|r| !r.resumed));

        // Changing the run count changes the fingerprint: nothing may be
        // resumed, not even the cells that *were* recorded.
        std::env::set_var("BSCHED_RUNS", "3");
        let after_runs = run_cells_reported(&jobs);
        assert!(
            after_runs.iter().all(|r| !r.resumed),
            "a runs change must discard the journal whole, not partially resume"
        );
        std::env::set_var("BSCHED_RUNS", "2");

        // Changing the master seed.
        let _ = run_cells_reported(&jobs); // repopulate under runs=2
        std::env::set_var("BSCHED_SEED", "12345");
        let after_seed = run_cells_reported(&jobs);
        assert!(
            after_seed.iter().all(|r| !r.resumed),
            "a seed change must discard the journal whole"
        );
        std::env::remove_var("BSCHED_SEED");

        // Changing the job list (shape) — even to a subset of what was
        // recorded — must not resume the overlapping cell.
        let _ = run_cells_reported(&jobs);
        let subset = run_cells_reported(&jobs[..1]);
        assert!(
            subset.iter().all(|r| !r.resumed),
            "a job-list change must discard the journal whole"
        );

        // Installing a fault plan changes the fingerprint too.
        let _ = run_cells_reported(&jobs);
        bsched_faults::install(FaultPlan::seeded(7));
        let after_plan = run_cells_reported(&jobs);
        bsched_faults::clear();
        assert!(
            after_plan.iter().all(|r| !r.resumed),
            "a fault-plan change must discard the journal whole"
        );

        // The discard itself is observable: a journal opened under a
        // different fingerprint reports how many cells it threw away.
        let fresh = run_cells_reported(&jobs);
        assert!(fresh.iter().all(|r| !r.resumed));
        let j = Journal::open(&path, "other-fingerprint").expect("open");
        assert!(j.is_empty());
        assert_eq!(
            j.discarded(),
            jobs.len(),
            "the discard must be reported, not silent"
        );

        std::env::remove_var("BSCHED_JOURNAL");
        std::env::remove_var("BSCHED_RUNS");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_output_is_wellformed() {
        let json = table_to_json(
            "T \"quoted\"",
            &["a".to_owned(), "b\n".to_owned()],
            &[vec!["1".to_owned(), "x\\y".to_owned()]],
        );
        assert_eq!(
            json,
            "{\"title\":\"T \\\"quoted\\\"\",\"header\":[\"a\",\"b\\n\"],\"rows\":[[\"1\",\"x\\\\y\"]]}"
        );
    }

    #[test]
    fn eval_config_defaults() {
        let _guard = env_lock();
        std::env::remove_var("BSCHED_RUNS");
        std::env::remove_var("BSCHED_SEED");
        let cfg = eval_config(ProcessorModel::max_8());
        assert_eq!(cfg.runs, 30);
        assert_eq!(cfg.processor, ProcessorModel::MaxOutstanding(8));
    }
}
