//! Experiment harness shared by the table/figure binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1`  | Table 1 / Fig. 7 — balanced weight contributions |
//! | `table2`  | Table 2 — % improvement, UNLIMITED, all systems × benchmarks |
//! | `table3`  | Table 3 — MDG detail across processor models |
//! | `table4`  | Table 4 — spill-instruction percentages |
//! | `table5`  | Table 5 — the N(30,5) pathology |
//! | `figure2` | Fig. 2 — the three example schedules |
//! | `figure3` | Fig. 3 — interlocks vs actual latency for those schedules |
//!
//! Run them with `cargo run --release -p bsched-bench --bin table2`.
//! Every binary honours `BSCHED_RUNS` (simulation runs per block,
//! default 30) and `BSCHED_SEED` (master seed, default matches
//! `EvalConfig::default`), so results are reproducible and a quick smoke
//! run is one environment variable away. `BSCHED_THREADS` caps the
//! worker threads used by [`run_cells`] and the per-block parallelism in
//! `evaluate` — any value produces identical output, because all
//! randomness is counter-split from the master seed and results are
//! folded in deterministic order.

#![warn(missing_docs)]

use bsched_core::Ratio;
use bsched_cpusim::ProcessorModel;
use bsched_memsim::{CacheModel, LatencyModel, MemorySystem, MixedModel, NetworkModel};
use bsched_pipeline::{
    compare, evaluate, try_evaluate, CompiledProgram, EvalConfig, Pipeline, PipelineError,
    ProgramEval, SchedulerChoice,
};
use bsched_stats::Improvement;
use bsched_workload::Benchmark;

/// One Table 2 row: a memory system plus the optimistic latency the
/// traditional baseline assumes for it.
#[derive(Debug, Clone)]
pub struct SystemRow {
    /// The memory system simulated.
    pub system: MemorySystem,
    /// The traditional scheduler's assumed load latency.
    pub optimistic: Ratio,
}

impl SystemRow {
    /// Display label, e.g. `L80(2,5) @ 2 3/5`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} @ {}", self.system.name(), self.optimistic)
    }
}

/// The 17 rows of Table 2, in paper order: each cache system at its hit
/// latency and at its effective access time, the seven networks at their
/// means, and the mixed system at hit latency and effective latency.
#[must_use]
pub fn table2_rows() -> Vec<SystemRow> {
    let mut rows = Vec::new();
    let caches = [
        (CacheModel::l80_5(), Ratio::new(13, 5)),  // 2.6
        (CacheModel::l80_10(), Ratio::new(18, 5)), // 3.6
        (CacheModel::l95_5(), Ratio::new(43, 20)), // 2.15
        (CacheModel::l95_10(), Ratio::new(12, 5)), // 2.4
    ];
    for (cache, effective) in caches {
        rows.push(SystemRow {
            system: cache.into(),
            optimistic: Ratio::from_int(2),
        });
        rows.push(SystemRow {
            system: cache.into(),
            optimistic: effective,
        });
    }
    for net in NetworkModel::paper_configs() {
        let mean = Ratio::from_int(net.optimistic_latency() as i64);
        rows.push(SystemRow {
            system: net.into(),
            optimistic: mean,
        });
    }
    let mixed = MixedModel::l80_n30_5();
    rows.push(SystemRow {
        system: mixed.into(),
        optimistic: Ratio::from_int(2),
    });
    rows.push(SystemRow {
        system: mixed.into(),
        optimistic: Ratio::new(38, 5),
    }); // 7.6
    rows
}

/// Evaluation configuration from the environment (`BSCHED_RUNS`,
/// `BSCHED_SEED`), defaulting to the paper's protocol.
#[must_use]
pub fn eval_config(processor: ProcessorModel) -> EvalConfig {
    let mut cfg = EvalConfig {
        processor,
        ..EvalConfig::default()
    };
    if let Ok(runs) = std::env::var("BSCHED_RUNS") {
        if let Ok(runs) = runs.parse::<u32>() {
            cfg.runs = runs.max(2);
        }
    }
    if let Ok(seed) = std::env::var("BSCHED_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            cfg.seed = seed;
        }
    }
    cfg
}

/// Result of one (benchmark, system, processor) comparison cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Paired percentage improvement of balanced over traditional.
    pub improvement: Improvement,
    /// Traditional evaluation (runtime, interlocks, instructions).
    pub traditional: ProgramEval,
    /// Balanced evaluation.
    pub balanced: ProgramEval,
    /// Traditional spill percentage.
    pub traditional_spill_percent: f64,
    /// Balanced spill percentage.
    pub balanced_spill_percent: f64,
}

/// Compiles and evaluates one benchmark under one system row and
/// processor model, returning the full comparison cell.
#[must_use]
pub fn run_cell(bench: &Benchmark, row: &SystemRow, processor: ProcessorModel) -> Cell {
    let pipeline = Pipeline::default();
    let balanced = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .expect("compile balanced");
    let traditional = pipeline
        .compile(
            bench.function(),
            &SchedulerChoice::traditional(row.optimistic),
        )
        .expect("compile traditional");
    run_cell_compiled(&balanced, &traditional, row, processor)
}

/// Evaluates one comparison cell from already-compiled programs.
///
/// Compilation does not depend on the memory system or processor model
/// being simulated, so callers sweeping one benchmark across many
/// systems (every table binary) can compile once and evaluate many
/// times; [`run_cells`] does exactly that.
#[must_use]
pub fn run_cell_compiled(
    balanced: &CompiledProgram,
    traditional: &CompiledProgram,
    row: &SystemRow,
    processor: ProcessorModel,
) -> Cell {
    let cfg = eval_config(processor);
    let b_eval = evaluate(balanced, &row.system, &cfg);
    let t_eval = evaluate(traditional, &row.system, &cfg);
    Cell {
        improvement: compare(&t_eval, &b_eval),
        traditional_spill_percent: traditional.spill_percent(),
        balanced_spill_percent: balanced.spill_percent(),
        traditional: t_eval,
        balanced: b_eval,
    }
}

/// [`run_cell_compiled`] with validation findings surfaced as errors.
///
/// # Errors
///
/// Propagates the first finding from
/// [`try_evaluate`](bsched_pipeline::try_evaluate) (only possible at
/// [`ValidationLevel::Full`](bsched_verify::ValidationLevel::Full)).
pub fn try_run_cell_compiled(
    balanced: &CompiledProgram,
    traditional: &CompiledProgram,
    row: &SystemRow,
    processor: ProcessorModel,
) -> Result<Cell, PipelineError> {
    let cfg = eval_config(processor);
    let b_eval = try_evaluate(balanced, &row.system, &cfg)?;
    let t_eval = try_evaluate(traditional, &row.system, &cfg)?;
    Ok(Cell {
        improvement: compare(&t_eval, &b_eval),
        traditional_spill_percent: traditional.spill_percent(),
        balanced_spill_percent: balanced.spill_percent(),
        traditional: t_eval,
        balanced: b_eval,
    })
}

/// One entry in a table's work list: which benchmark to evaluate under
/// which system row and processor model.
#[derive(Debug, Clone, Copy)]
pub struct CellJob<'a> {
    /// Benchmark to compile and simulate.
    pub bench: &'a Benchmark,
    /// Memory system plus the traditional scheduler's assumed latency.
    pub row: &'a SystemRow,
    /// Processor model to simulate under.
    pub processor: ProcessorModel,
}

/// One cell's result from [`run_cells_checked`]: the evaluated cell, or
/// the reason this cell (and only this cell) could not be produced.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The cell evaluated normally.
    Ok(Cell),
    /// The cell failed — a panic, a compile error, or a validation
    /// finding — and failed again on a serial retry.
    Failed {
        /// Human-readable reason, rendered from the error or panic.
        reason: String,
    },
}

impl CellOutcome {
    /// The cell, if it evaluated normally.
    #[must_use]
    pub fn as_ok(&self) -> Option<&Cell> {
        match self {
            CellOutcome::Ok(cell) => Some(cell),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// The failure reason, if the cell failed.
    #[must_use]
    pub fn failure(&self) -> Option<&str> {
        match self {
            CellOutcome::Ok(_) => None,
            CellOutcome::Failed { reason } => Some(reason),
        }
    }
}

/// Renders a failure reason as a table cell: `FAILED(<reason>)`,
/// truncated to the reason's first line and at most 40 characters so a
/// broken cell cannot wreck the table layout.
#[must_use]
pub fn failure_label(reason: &str) -> String {
    let first_line = reason.lines().next().unwrap_or("");
    let mut short: String = first_line.chars().take(40).collect();
    if first_line.chars().count() > 40 {
        short.push('…');
    }
    format!("FAILED({short})")
}

/// Test hook: `BSCHED_INJECT_PANIC=<benchmark name>` makes every cell of
/// that benchmark panic inside the evaluation stage, exercising the
/// degradation path end to end.
fn maybe_inject_panic(bench_name: &str) {
    if std::env::var("BSCHED_INJECT_PANIC").as_deref() == Ok(bench_name) {
        panic!("injected failure (BSCHED_INJECT_PANIC={bench_name})");
    }
}

/// Runs every job, in parallel across `BSCHED_THREADS` workers (default:
/// all cores), returning cells in job order.
///
/// Each cell is a pure function of its job — compilation is
/// deterministic and every simulation stream is counter-split from the
/// master seed — so this is bit-identical to calling [`run_cell`] in a
/// loop, and `BSCHED_THREADS=1` does exactly that. Table binaries fan
/// out here, across cells; the per-block parallelism inside
/// [`evaluate`](bsched_pipeline::evaluate) detects the nesting and stays
/// serial.
///
/// # Panics
///
/// Panics on the first failed cell; harness code that wants graceful
/// degradation uses [`run_cells_checked`] instead.
#[must_use]
pub fn run_cells(jobs: &[CellJob<'_>]) -> Vec<Cell> {
    run_cells_checked(jobs)
        .into_iter()
        .map(|outcome| match outcome {
            CellOutcome::Ok(cell) => cell,
            CellOutcome::Failed { reason } => panic!("cell failed: {reason}"),
        })
        .collect()
}

/// [`run_cells`] with per-cell fault isolation: a panic, compile error,
/// or validation finding in one cell is retried once serially and, if it
/// persists, reported as [`CellOutcome::Failed`] — every other cell
/// still evaluates.
#[must_use]
pub fn run_cells_checked(jobs: &[CellJob<'_>]) -> Vec<CellOutcome> {
    // Compilation is independent of the memory system and processor
    // model: the balanced schedule depends only on the benchmark, the
    // traditional schedule only on (benchmark, optimistic latency).
    // Table job lists repeat those pairs heavily — Table 2 alone names
    // each benchmark's balanced program 17 times — so each distinct
    // program is compiled once and shared across its cells. Compilation
    // is deterministic, making the sharing bit-identical to compiling
    // per cell as [`run_cell`] does.
    #[derive(PartialEq, Eq, Hash)]
    enum Key {
        Balanced(usize),
        Traditional(usize, Ratio),
    }
    let mut index: std::collections::HashMap<Key, usize> = std::collections::HashMap::new();
    let mut tasks: Vec<(&Benchmark, SchedulerChoice)> = Vec::new();
    let mut refs: Vec<(usize, usize)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let bench_key = std::ptr::from_ref(job.bench) as usize;
        let balanced = *index.entry(Key::Balanced(bench_key)).or_insert_with(|| {
            tasks.push((job.bench, SchedulerChoice::balanced()));
            tasks.len() - 1
        });
        let traditional = *index
            .entry(Key::Traditional(bench_key, job.row.optimistic))
            .or_insert_with(|| {
                tasks.push((job.bench, SchedulerChoice::traditional(job.row.optimistic)));
                tasks.len() - 1
            });
        refs.push((balanced, traditional));
    }

    // Compile each distinct program once, with panics and errors caught
    // per program; a failed compile only poisons the cells that need it.
    let compile_one = |_: usize, task: &(&Benchmark, SchedulerChoice)| {
        Pipeline::default()
            .compile(task.0.function(), &task.1)
            .map_err(|e| e.to_string())
    };
    let compiled: Vec<Result<CompiledProgram, String>> =
        bsched_par::parallel_map_catch(&tasks, compile_one)
            .into_iter()
            .enumerate()
            .map(
                |(k, caught)| match caught.unwrap_or_else(|p| Err(p.to_string())) {
                    Ok(program) => Ok(program),
                    // Retry once serially: rules out transient causes
                    // (resource exhaustion under full fan-out) before the
                    // cell is written off.
                    Err(_) => bsched_par::parallel_map_catch(&tasks[k..=k], compile_one)
                        .pop()
                        .expect("one result per item")
                        .unwrap_or_else(|p| Err(p.to_string())),
                },
            )
            .collect();

    let eval_one = |i: usize, &(balanced, traditional): &(usize, usize)| -> Result<Cell, String> {
        let job = &jobs[i];
        maybe_inject_panic(job.bench.name());
        let scheduler_of = |k: usize| &tasks[k].1;
        let balanced = compiled[balanced]
            .as_ref()
            .map_err(|e| format!("compiling {}: {e}", scheduler_of(balanced).name()))?;
        let traditional = compiled[traditional]
            .as_ref()
            .map_err(|e| format!("compiling {}: {e}", scheduler_of(traditional).name()))?;
        try_run_cell_compiled(balanced, traditional, job.row, job.processor)
            .map_err(|e| e.to_string())
    };
    bsched_par::parallel_map_catch(&refs, eval_one)
        .into_iter()
        .enumerate()
        .map(
            |(i, caught)| match caught.unwrap_or_else(|p| Err(p.to_string())) {
                Ok(cell) => CellOutcome::Ok(cell),
                Err(_) => {
                    // Same serial retry as the compile stage.
                    let retried =
                        bsched_par::parallel_map_catch(&refs[i..=i], |_, r| eval_one(i, r))
                            .pop()
                            .expect("one result per item");
                    match retried.unwrap_or_else(|p| Err(p.to_string())) {
                        Ok(cell) => CellOutcome::Ok(cell),
                        Err(reason) => CellOutcome::Failed { reason },
                    }
                }
            },
        )
        .collect()
}

/// Prints every failed cell to stderr (benchmark, system, processor and
/// reason) and returns the failure count; table binaries exit non-zero
/// when it is positive.
pub fn report_cell_failures(jobs: &[CellJob<'_>], outcomes: &[CellOutcome]) -> usize {
    let mut failures = 0;
    for (job, outcome) in jobs.iter().zip(outcomes) {
        if let Some(reason) = outcome.failure() {
            failures += 1;
            eprintln!(
                "FAILED cell: {} under {} on {}: {reason}",
                job.bench.name(),
                job.row.label(),
                job.processor,
            );
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures} of {} cells failed; the rest are reported above",
            jobs.len()
        );
    }
    failures
}

/// Serialises a table as a JSON object (`{"title", "header", "rows"}`)
/// for external plotting tools. Strings are escaped per RFC 8259.
#[must_use]
pub fn table_to_json(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
    let list = |cells: &[String]| {
        format!(
            "[{}]",
            cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        )
    };
    format!(
        "{{\"title\":{},\"header\":{},\"rows\":[{}]}}",
        esc(title),
        list(header),
        rows.iter().map(|r| list(r)).collect::<Vec<_>>().join(",")
    )
}

/// Pretty-prints a header followed by aligned rows — or, when
/// `BSCHED_JSON=1`, one machine-readable JSON object per table.
pub fn print_table(title: &str, header: &[String], rows: &[Vec<String>]) {
    if std::env::var("BSCHED_JSON").as_deref() == Ok("1") {
        println!("{}", table_to_json(title, header, rows));
        return;
    }
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(header));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_workload::{perfect, perfect_club};

    /// Serialises the tests that read or write `BSCHED_*` environment
    /// variables; the test harness runs tests on concurrent threads.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        ENV_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn table2_has_seventeen_rows_in_paper_order() {
        let rows = table2_rows();
        assert_eq!(rows.len(), 17);
        assert_eq!(rows[0].label(), "L80(2,5) @ 2");
        assert_eq!(rows[1].label(), "L80(2,5) @ 2 3/5");
        assert_eq!(rows[8].label(), "N(2,2) @ 2");
        assert_eq!(rows[15].label(), "L80-N(30,5) @ 2");
        assert_eq!(rows[16].label(), "L80-N(30,5) @ 7 3/5");
    }

    #[test]
    fn run_cell_produces_consistent_results() {
        let _guard = env_lock();
        std::env::remove_var("BSCHED_RUNS");
        let bench = perfect::track();
        let row = &table2_rows()[8]; // N(2,2)
        let cell = run_cell(&bench, row, ProcessorModel::Unlimited);
        assert!(cell.improvement.mean_percent.is_finite());
        assert!(cell.traditional.mean_runtime > 0.0);
        assert!(cell.balanced.mean_runtime > 0.0);
        assert!(cell.traditional_spill_percent >= 0.0);
    }

    #[test]
    fn threads_env_does_not_change_results() {
        // One full Table-2 row: every benchmark under L80(2,5), serial
        // (BSCHED_THREADS=1) versus maximally parallel, bit-identical.
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "5");
        let benchmarks = perfect_club();
        let rows = table2_rows();
        let row = &rows[0];
        let jobs: Vec<CellJob> = benchmarks
            .iter()
            .map(|bench| CellJob {
                bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        std::env::set_var("BSCHED_THREADS", "1");
        let serial = run_cells(&jobs);
        std::env::remove_var("BSCHED_THREADS");
        let parallel = run_cells(&jobs);
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.improvement.mean_percent, p.improvement.mean_percent);
            assert_eq!(
                s.traditional.bootstrap_runtimes,
                p.traditional.bootstrap_runtimes
            );
            assert_eq!(s.balanced.bootstrap_runtimes, p.balanced.bootstrap_runtimes);
            assert_eq!(s.balanced.mean_interlocks, p.balanced.mean_interlocks);
        }
    }

    /// A benchmark whose block already names a physical register, which
    /// the allocator rejects — a stand-in for any corrupted program.
    fn corrupted_benchmark() -> Benchmark {
        use bsched_ir::{Function, Inst, Opcode, PhysReg, RegClass};
        let phys = PhysReg::new(RegClass::Int, 0).into();
        let block = bsched_ir::BasicBlock::new(
            "bad",
            vec![Inst::new(Opcode::Li, vec![phys], vec![], None)],
        );
        Benchmark::new("BROKEN", Function::new("BROKEN", vec![block]))
    }

    #[test]
    fn corrupted_benchmark_degrades_to_a_failed_cell() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        let good = perfect::track();
        let bad = corrupted_benchmark();
        let rows = table2_rows();
        let row = &rows[8]; // N(2,2)
        let jobs: Vec<CellJob> = [&good, &bad, &good]
            .into_iter()
            .map(|bench| CellJob {
                bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        let outcomes = run_cells_checked(&jobs);
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].as_ok().is_some(), "good cell must survive");
        assert!(outcomes[2].as_ok().is_some(), "good cell must survive");
        let reason = outcomes[1].failure().expect("bad cell must fail");
        assert!(
            reason.contains("physical registers"),
            "reason should name the allocator's complaint: {reason}"
        );
        assert!(failure_label(reason).starts_with("FAILED("));
        assert_eq!(report_cell_failures(&jobs, &outcomes), 1);
    }

    #[test]
    fn injected_panic_fails_the_same_cells_serial_and_parallel() {
        let _guard = env_lock();
        std::env::set_var("BSCHED_RUNS", "2");
        let benchmarks = perfect_club();
        let rows = table2_rows();
        let row = &rows[8]; // N(2,2)
        let jobs: Vec<CellJob> = benchmarks
            .iter()
            .map(|bench| CellJob {
                bench,
                row,
                processor: ProcessorModel::Unlimited,
            })
            .collect();
        std::env::set_var("BSCHED_INJECT_PANIC", benchmarks[2].name());
        std::env::set_var("BSCHED_THREADS", "1");
        let serial = run_cells_checked(&jobs);
        std::env::set_var("BSCHED_THREADS", "4");
        let parallel = run_cells_checked(&jobs);
        std::env::remove_var("BSCHED_THREADS");
        std::env::remove_var("BSCHED_INJECT_PANIC");
        std::env::remove_var("BSCHED_RUNS");
        assert_eq!(serial.len(), parallel.len());
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            match (s, p) {
                (CellOutcome::Ok(s), CellOutcome::Ok(p)) => {
                    assert_eq!(
                        s.improvement.mean_percent, p.improvement.mean_percent,
                        "surviving cell {i} differs between serial and parallel"
                    );
                    assert_eq!(s.balanced.bootstrap_runtimes, p.balanced.bootstrap_runtimes);
                }
                (CellOutcome::Failed { reason: s }, CellOutcome::Failed { reason: p }) => {
                    assert_eq!(i, 2, "only the injected cell may fail");
                    assert_eq!(s, p);
                    assert!(s.contains("injected failure"));
                }
                _ => panic!("cell {i}: serial and parallel outcomes disagree"),
            }
        }
    }

    #[test]
    fn json_output_is_wellformed() {
        let json = table_to_json(
            "T \"quoted\"",
            &["a".to_owned(), "b\n".to_owned()],
            &[vec!["1".to_owned(), "x\\y".to_owned()]],
        );
        assert_eq!(
            json,
            "{\"title\":\"T \\\"quoted\\\"\",\"header\":[\"a\",\"b\\n\"],\"rows\":[[\"1\",\"x\\\\y\"]]}"
        );
    }

    #[test]
    fn eval_config_defaults() {
        let _guard = env_lock();
        std::env::remove_var("BSCHED_RUNS");
        std::env::remove_var("BSCHED_SEED");
        let cfg = eval_config(ProcessorModel::max_8());
        assert_eq!(cfg.runs, 30);
        assert_eq!(cfg.processor, ProcessorModel::MaxOutstanding(8));
    }
}
