//! Table 5: analysis of the unbalanced N(30,5) configuration — the case
//! where mean latency far exceeds the available load-level parallelism,
//! so balanced scheduling loses its guarantee (§5).
//!
//! Usage: `cargo run --release -p bsched-bench --bin table5`

use bsched_bench::{
    failure_label, print_table, report_cell_reports, run_cells_reported, CellJob, CellReport,
    SystemRow,
};
use bsched_core::Ratio;
use bsched_cpusim::ProcessorModel;
use bsched_memsim::NetworkModel;
use bsched_workload::perfect_club;

fn main() {
    let row = SystemRow {
        system: NetworkModel::new(30.0, 5.0).into(),
        optimistic: Ratio::from_int(30),
    };
    let header: Vec<String> = [
        "Program", "TIns", "BIns", "U:Imp%", "U:TI%", "U:BI%", "M8:Imp%", "M8:TI%", "M8:BI%",
        "L8:Imp%", "L8:TI%", "L8:BI%",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();

    // Evaluate all (benchmark × processor model) cells in parallel.
    let benchmarks = perfect_club();
    let models = ProcessorModel::paper_models();
    let jobs: Vec<CellJob> = benchmarks
        .iter()
        .flat_map(|bench| {
            models.iter().map(|&processor| CellJob {
                bench,
                row: &row,
                processor,
            })
        })
        .collect();
    let results = run_cells_reported(&jobs);

    let mut rows = Vec::new();
    for (bench, row_cells) in benchmarks.iter().zip(results.chunks(models.len())) {
        let mut cells = vec![bench.name().to_owned()];
        // TIns/BIns are compile-time statistics, identical across
        // processor models; any surviving cell can supply them.
        match row_cells.iter().find_map(CellReport::cell) {
            Some(cell) => {
                cells.push(format!("{:.0}", cell.traditional.dynamic_instructions));
                cells.push(format!("{:.0}", cell.balanced.dynamic_instructions));
            }
            None => cells.extend(["-".to_owned(), "-".to_owned()]),
        }
        for report in row_cells {
            match report.cell() {
                Some(cell) => {
                    cells.push(format!("{:.1}", cell.improvement.mean_percent));
                    cells.push(format!("{:.1}", cell.traditional.interlock_percent()));
                    cells.push(format!("{:.1}", cell.balanced.interlock_percent()));
                }
                None => {
                    cells.push(failure_label(report.failure_reason().unwrap_or("unknown")));
                    cells.extend(["-".to_owned(), "-".to_owned()]);
                }
            }
        }
        rows.push(cells);
        eprint!(".");
    }
    eprintln!();
    print_table(
        "Table 5: N(30,5) analysis — the effect of spill code under extreme latency",
        &header,
        &rows,
    );
    if report_cell_reports(&results) > 0 {
        std::process::exit(1);
    }
}
