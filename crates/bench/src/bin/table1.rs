//! Table 1 / Figure 7: the balanced weight computation on the paper's
//! worked example — the per-instruction contribution matrix and the
//! final exact-rational weight of each load.
//!
//! Usage: `cargo run --release -p bsched-bench --bin table1`

use bsched_bench::print_table;
use bsched_core::{BalancedWeights, Ratio, WeightAssigner};
use bsched_dag::{chances_exact, connected_components, Closures, CodeDag, DepKind};
use bsched_ir::{BasicBlock, Inst, InstId, MemAccess, MemLoc, Opcode, RegionId};

/// Reconstruction of the Figure 7 DAG (see `bsched-core`'s tests and
/// EXPERIMENTS.md). Program order:
/// `0:L2 1:L3 2:L4 3:L5 4:L6 5:X1 6:X2 7:X3 8:X4 9:L1`.
fn figure7_dag() -> CodeDag {
    let load = |name: &str| {
        Inst::new(
            Opcode::Ldc1,
            vec![],
            vec![],
            Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
        )
        .with_name(name)
    };
    let x = |name: &str| Inst::new(Opcode::FMove, vec![], vec![], None).with_name(name);
    let block = BasicBlock::new(
        "fig7",
        vec![
            load("L2"),
            load("L3"),
            load("L4"),
            load("L5"),
            load("L6"),
            x("X1"),
            x("X2"),
            x("X3"),
            x("X4"),
            load("L1"),
        ],
    );
    let mut dag = CodeDag::new(&block);
    for (a, b) in [
        (0, 1),
        (0, 5),
        (0, 6),
        (1, 2),
        (1, 3),
        (3, 4),
        (6, 7),
        (7, 8),
    ] {
        dag.add_edge(InstId::new(a), InstId::new(b), DepKind::True);
    }
    dag
}

fn main() {
    let dag = figure7_dag();
    let loads = dag.load_ids();
    let closures = Closures::compute(&dag);

    // Contribution matrix: contribution[load][donor].
    let mut header = vec!["Load".to_owned()];
    header.extend(dag.node_ids().map(|i| dag.name(i).to_owned()));
    header.push("Weight".to_owned());

    let weights = BalancedWeights::new().assign(&dag);
    let mut rows = Vec::new();
    for &l in &loads {
        let mut contribution = vec![Ratio::ZERO; dag.len()];
        for donor in dag.node_ids() {
            let keep = closures.independent_of(donor);
            for component in connected_components(&dag, &keep) {
                if !component.contains(&l) {
                    continue;
                }
                let chances = chances_exact(&dag, &component);
                if chances > 0 {
                    contribution[donor.index()] = Ratio::new(1, i64::from(chances));
                }
            }
        }
        let mut cells = vec![dag.name(l).to_owned()];
        cells.extend(contribution.iter().map(|c| {
            if *c == Ratio::ZERO {
                "0".to_owned()
            } else {
                c.to_string()
            }
        }));
        cells.push(weights.weight(l).to_string());
        rows.push(cells);
    }
    print_table(
        "Table 1: balanced weight contributions for the Figure 7 code DAG",
        &header,
        &rows,
    );
    println!("\nNarrative checks (§3): X1 contributes 1 to L1 and 1/3 to L3..L6;");
    println!("L1's weight is 10 (= 1 + one issue slot from each other instruction);");
    println!("L2's weight is 1 1/4 (only L1 contributes, Chances = 4).");
}
