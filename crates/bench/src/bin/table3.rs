//! Table 3: detailed analysis of MDG — improvement, instruction counts
//! and interlock percentages under all three processor models and every
//! memory system.
//!
//! Usage: `cargo run --release -p bsched-bench --bin table3`

use bsched_bench::{
    failure_label, print_table, report_cell_reports, run_cells_reported, table2_rows, CellJob,
    CellReport,
};
use bsched_cpusim::ProcessorModel;
use bsched_memsim::LatencyModel;
use bsched_workload::perfect_club;

fn main() {
    // The paper details MDG; BSCHED_BENCH=<name> details any stand-in.
    let wanted = std::env::var("BSCHED_BENCH").unwrap_or_else(|_| "MDG".to_owned());
    let mdg = perfect_club()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(&wanted))
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {wanted:?}; defaulting to MDG");
            bsched_workload::perfect::mdg()
        });
    let header: Vec<String> = [
        "System", "OptLat", "TIns", "BIns", "U:Imp%", "U:TI%", "U:BI%", "M8:Imp%", "M8:TI%",
        "M8:BI%", "L8:Imp%", "L8:TI%", "L8:BI%",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();

    // Evaluate all (system × processor model) cells in parallel.
    let system_rows = table2_rows();
    let models = ProcessorModel::paper_models();
    let bench = &mdg;
    let jobs: Vec<CellJob> = system_rows
        .iter()
        .flat_map(|row| {
            models.iter().map(move |&processor| CellJob {
                bench,
                row,
                processor,
            })
        })
        .collect();
    let results = run_cells_reported(&jobs);

    let mut rows = Vec::new();
    for (row, row_cells) in system_rows.iter().zip(results.chunks(models.len())) {
        let mut cells = vec![row.system.name(), row.optimistic.to_string()];
        // TIns/BIns are compile-time statistics, identical across
        // processor models; any surviving cell can supply them.
        match row_cells.iter().find_map(CellReport::cell) {
            Some(cell) => {
                cells.push(format!("{:.0}", cell.traditional.dynamic_instructions));
                cells.push(format!("{:.0}", cell.balanced.dynamic_instructions));
            }
            None => cells.extend(["-".to_owned(), "-".to_owned()]),
        }
        for report in row_cells {
            match report.cell() {
                Some(cell) => {
                    cells.push(format!("{:.1}", cell.improvement.mean_percent));
                    cells.push(format!("{:.1}", cell.traditional.interlock_percent()));
                    cells.push(format!("{:.1}", cell.balanced.interlock_percent()));
                }
                None => {
                    cells.push(failure_label(report.failure_reason().unwrap_or("unknown")));
                    cells.extend(["-".to_owned(), "-".to_owned()]);
                }
            }
        }
        rows.push(cells);
        eprint!(".");
    }
    eprintln!();
    print_table(
        &format!(
            "Table 3: detailed analysis of {} (U = UNLIMITED, M8 = MAX-8, L8 = LEN-8)",
            mdg.name()
        ),
        &header,
        &rows,
    );
    if report_cell_reports(&results) > 0 {
        std::process::exit(1);
    }
}
