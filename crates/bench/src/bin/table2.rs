//! Table 2: percentage improvement in execution time of balanced over
//! traditional scheduling, processor model UNLIMITED, for every memory
//! system and benchmark.
//!
//! Usage: `cargo run --release -p bsched-bench --bin table2`
//! (`BSCHED_RUNS=5` for a quick pass).

use bsched_bench::{
    failure_label, print_table, report_cell_reports, run_cells_reported, table2_rows, CellJob,
};
use bsched_cpusim::ProcessorModel;
use bsched_memsim::LatencyModel;
use bsched_workload::perfect_club;

fn main() {
    // The paper's Table 2 uses UNLIMITED; it reports that MAX-8 and
    // LEN-8 behave similarly (means 10.0% and 8.7% vs 9.9%). Set
    // BSCHED_PROCESSOR=max8|len8 to regenerate the table for those.
    let processor = match std::env::var("BSCHED_PROCESSOR").as_deref() {
        Ok("max8") => ProcessorModel::max_8(),
        Ok("len8") => ProcessorModel::len_8(),
        _ => ProcessorModel::Unlimited,
    };
    // BSCHED_CI=1 prints each cell as mean±halfwidth of its 95%
    // bootstrap confidence interval (§4.3).
    let with_ci = std::env::var("BSCHED_CI").as_deref() == Ok("1");
    let benchmarks = perfect_club();
    let mut header: Vec<String> = vec!["System".to_owned(), "OptLat".to_owned()];
    header.extend(benchmarks.iter().map(|b| b.name().to_owned()));
    header.push("Mean".to_owned());

    // All 17 × 8 cells evaluate in parallel; formatting then walks the
    // results in table order.
    let system_rows = table2_rows();
    let jobs: Vec<CellJob> = system_rows
        .iter()
        .flat_map(|row| {
            benchmarks.iter().map(move |bench| CellJob {
                bench,
                row,
                processor,
            })
        })
        .collect();
    let results = run_cells_reported(&jobs);

    let mut rows = Vec::new();
    for (row, row_cells) in system_rows.iter().zip(results.chunks(benchmarks.len())) {
        let mut cells = vec![row.system.name(), row.optimistic.to_string()];
        let mut sum = 0.0;
        let mut survivors = 0usize;
        for report in row_cells {
            match report.cell() {
                Some(cell) => {
                    sum += cell.improvement.mean_percent;
                    survivors += 1;
                    if with_ci {
                        let half = cell.improvement.interval.width() / 2.0;
                        cells.push(format!("{:.1}±{half:.1}", cell.improvement.mean_percent));
                    } else {
                        cells.push(format!("{:.1}", cell.improvement.mean_percent));
                    }
                }
                None => cells.push(failure_label(report.failure_reason().unwrap_or("unknown"))),
            }
        }
        // The row mean averages the surviving cells only.
        cells.push(if survivors == 0 {
            "-".to_owned()
        } else {
            format!("{:.1}", sum / survivors as f64)
        });
        rows.push(cells);
        eprint!(".");
    }
    eprintln!();
    print_table(
        &format!(
            "Table 2: % improvement from balanced scheduling (processor model {})",
            processor.paper_name()
        ),
        &header,
        &rows,
    );
    if report_cell_reports(&results) > 0 {
        std::process::exit(1);
    }
}
