//! Figure 3: hardware interlocks incurred by the Figure 2 schedules as
//! the actual memory latency varies from 1 to 6 cycles.
//!
//! The paper's claim: "for latencies in the range of 2–4, the balanced
//! schedules are faster than both the greedy and lazy traditional
//! schedules … Outside this range the balanced and traditional schedules
//! perform equivalently."
//!
//! Usage: `cargo run --release -p bsched-bench --bin figure3`

use bsched_bench::print_table;
use bsched_cpusim::{simulate_block, ProcessorModel};
use bsched_ir::{BasicBlock, BlockBuilder, InstId};
use bsched_memsim::FixedLatency;
use bsched_stats::Pcg32;

/// The Figure 1 program with real register dependences:
/// `L0` loads the address used by `L1`; `X4` consumes `L1`'s value;
/// `X0..X3` are independent.
///
/// Instruction order: L0 L1 X0 X1 X2 X3 X4 (ids 1..: id 0 is the base).
fn figure1_block() -> BasicBlock {
    let mut b = BlockBuilder::new("fig1");
    let region = b.fresh_region();
    let base = b.def_int("base"); // id 0
    let addr_val = b.load_int_region("L0", region, base, Some(0)); // id 1
    let l1 = b.load_region("L1", region, addr_val, Some(8)); // id 2
    for n in 0..4 {
        let _ = b.fconst(&format!("X{n}"), 1.0); // ids 3..6
    }
    let _ = b.fadd("X4", l1, l1); // id 7
    b.finish()
}

/// Reorders the block's scheduled instructions (base stays first).
fn reorder(block: &BasicBlock, names: &[&str]) -> BasicBlock {
    let mut order = vec![InstId::new(0)];
    for name in names {
        let (id, _) = block
            .iter_ids()
            .find(|(_, i)| i.name() == Some(name))
            .expect("name exists");
        order.push(id);
    }
    block.reordered(&order)
}

fn main() {
    let block = figure1_block();
    // The three Figure 2 schedules.
    let schedules = [
        (
            "Traditional W=5",
            vec!["L0", "X0", "X1", "X2", "X3", "L1", "X4"],
        ),
        (
            "Traditional W=1",
            vec!["L0", "L1", "X0", "X1", "X2", "X3", "X4"],
        ),
        ("Balanced", vec!["L0", "X0", "X1", "L1", "X2", "X3", "X4"]),
    ];

    let header: Vec<String> = std::iter::once("Latency".to_owned())
        .chain(schedules.iter().map(|(n, _)| (*n).to_owned()))
        .collect();
    let mut rows = Vec::new();
    for latency in 1..=6u64 {
        let mut cells = vec![latency.to_string()];
        for (_, order) in &schedules {
            let scheduled = reorder(&block, order);
            let mut rng = Pcg32::seed_from_u64(0);
            let result = simulate_block(
                &scheduled,
                &FixedLatency::new(latency),
                ProcessorModel::Unlimited,
                &mut rng,
            );
            cells.push(result.interlocks.to_string());
        }
        rows.push(cells);
    }
    print_table(
        "Figure 3: interlocks vs actual load latency",
        &header,
        &rows,
    );
}
