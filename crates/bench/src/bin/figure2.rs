//! Figure 2: the three example schedules of the Figure 1 DAG — greedy
//! traditional (w = 5), lazy traditional (w = 1), and balanced (w = 3).
//!
//! Uses the top-down scheduler, which reproduces the paper's
//! illustration letter for letter.
//!
//! Usage: `cargo run --release -p bsched-bench --bin figure2`

use bsched_bench::print_table;
use bsched_core::{
    BalancedWeights, Direction, ListScheduler, Ratio, TraditionalWeights, WeightAssigner,
};
use bsched_dag::{CodeDag, DepKind};
use bsched_ir::{BasicBlock, Inst, InstId, MemAccess, MemLoc, Opcode, RegionId};

/// Builds the Figure 1 DAG: `L0 → L1 → X4`, with `X0..X3` independent.
fn figure1_dag() -> CodeDag {
    let load = |name: &str| {
        Inst::new(
            Opcode::Ldc1,
            vec![],
            vec![],
            Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
        )
        .with_name(name)
    };
    let x = |name: &str| Inst::new(Opcode::FMove, vec![], vec![], None).with_name(name);
    let block = BasicBlock::new(
        "fig1",
        vec![
            load("L0"),
            load("L1"),
            x("X0"),
            x("X1"),
            x("X2"),
            x("X3"),
            x("X4"),
        ],
    );
    let mut dag = CodeDag::new(&block);
    dag.add_edge(InstId::new(0), InstId::new(1), DepKind::True);
    dag.add_edge(InstId::new(1), InstId::new(6), DepKind::True);
    dag
}

fn schedule_names(dag: &CodeDag, assigner: &dyn WeightAssigner) -> Vec<String> {
    let sched = ListScheduler::new()
        .with_direction(Direction::TopDown)
        .run(dag, assigner);
    sched
        .order()
        .iter()
        .map(|&i| dag.name(i).to_owned())
        .collect()
}

fn main() {
    let dag = figure1_dag();
    let greedy = schedule_names(&dag, &TraditionalWeights::new(Ratio::from_int(5)));
    let lazy = schedule_names(&dag, &TraditionalWeights::new(Ratio::ONE));
    let balanced = schedule_names(&dag, &BalancedWeights::new());

    let header: Vec<String> = ["slot", "Traditional W=5", "Traditional W=1", "Balanced"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let rows: Vec<Vec<String>> = (0..greedy.len())
        .map(|i| {
            vec![
                i.to_string(),
                greedy[i].clone(),
                lazy[i].clone(),
                balanced[i].clone(),
            ]
        })
        .collect();
    print_table(
        "Figure 2: schedules generated from the Figure 1 code DAG",
        &header,
        &rows,
    );
}
