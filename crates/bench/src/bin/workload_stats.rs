//! Workload census: the structural profile of every benchmark block —
//! sizes, load densities, dependence depth, parallelism and balanced
//! weights. This is the evidence behind DESIGN.md's claim that each
//! stand-in targets its Perfect Club namesake's qualitative profile.
//!
//! Usage: `cargo run --release -p bsched-bench --bin workload_stats`

use bsched_bench::print_table;
use bsched_core::{BalancedWeights, WeightAssigner};
use bsched_dag::{build_dag, AliasModel, DagProfile};
use bsched_workload::perfect_club;

fn main() {
    let header: Vec<String> = [
        "Block", "Freq", "Insts", "Loads", "Edges", "Depth", "Width", "SerLoads", "MaxW", "MeanW",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();

    for bench in perfect_club() {
        let mut rows = Vec::new();
        for block in bench.function().blocks() {
            let dag = build_dag(block, AliasModel::Fortran);
            let profile = DagProfile::of(&dag);
            let weights = BalancedWeights::new().assign(&dag);
            let loads = dag.load_ids();
            let max_w = loads
                .iter()
                .map(|&l| weights.weight(l))
                .max()
                .unwrap_or(bsched_core::Ratio::ONE);
            let mean_w = loads
                .iter()
                .map(|&l| weights.weight(l).to_f64())
                .sum::<f64>()
                / loads.len().max(1) as f64;
            rows.push(vec![
                block.name().to_owned(),
                format!("{:.0}", block.frequency()),
                profile.instructions.to_string(),
                profile.loads.to_string(),
                profile.edges.to_string(),
                profile.critical_path.to_string(),
                format!("{:.2}", profile.parallelism),
                profile.max_serial_loads.to_string(),
                max_w.to_string(),
                format!("{mean_w:.2}"),
            ]);
        }
        print_table(&format!("{} block profiles", bench.name()), &header, &rows);
    }
}
