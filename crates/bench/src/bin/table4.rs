//! Table 4: spill instructions executed, as a percentage of total
//! dynamic instructions — the balanced scheduler versus the traditional
//! scheduler at each optimistic latency the paper evaluates.
//!
//! Spill percentages are properties of compilation only (no simulation),
//! so this binary is fast and exact.
//!
//! Usage: `cargo run --release -p bsched-bench --bin table4`

use bsched_bench::print_table;
use bsched_core::Ratio;
use bsched_pipeline::{AllocationStrategy, Pipeline, SchedulerChoice};
use bsched_workload::perfect_club;

fn main() {
    // BSCHED_ALLOC=usage swaps in the 1992-vintage usage-count allocator
    // that recreates GCC 2.2.2's spill-everywhere behaviour — the
    // allocator regime the paper's Table 4 was measured under.
    let allocation = match std::env::var("BSCHED_ALLOC").as_deref() {
        Ok("usage") => AllocationStrategy::UsageCount,
        _ => AllocationStrategy::BeladyScan,
    };
    // The optimistic-latency columns of Table 4.
    let latencies: Vec<(String, Ratio)> = [
        ("2", Ratio::from_int(2)),
        ("2.15", Ratio::new(43, 20)),
        ("2.4", Ratio::new(12, 5)),
        ("2.6", Ratio::new(13, 5)),
        ("3", Ratio::from_int(3)),
        ("3.6", Ratio::new(18, 5)),
        ("5", Ratio::from_int(5)),
        ("7.6", Ratio::new(38, 5)),
        ("30", Ratio::from_int(30)),
    ]
    .iter()
    .map(|(n, r)| ((*n).to_owned(), *r))
    .collect();

    let mut header = vec![
        "Program".to_owned(),
        "BIns".to_owned(),
        "Balanced".to_owned(),
    ];
    header.extend(latencies.iter().map(|(n, _)| format!("T@{n}")));

    let pipeline = Pipeline {
        allocation,
        ..Pipeline::default()
    };
    let mut rows = Vec::new();
    for bench in perfect_club() {
        let balanced = pipeline
            .compile(bench.function(), &SchedulerChoice::balanced())
            .expect("balanced");
        let mut cells = vec![
            bench.name().to_owned(),
            format!("{:.0}", balanced.dynamic_instructions()),
            format!("{:.2}", balanced.spill_percent()),
        ];
        for (_, latency) in &latencies {
            let traditional = pipeline
                .compile(bench.function(), &SchedulerChoice::traditional(*latency))
                .expect("traditional");
            cells.push(format!("{:.2}", traditional.spill_percent()));
        }
        rows.push(cells);
    }
    print_table(
        &format!(
            "Table 4: spill instructions executed (% of dynamic instructions), allocator {allocation:?}"
        ),
        &header,
        &rows,
    );
}
