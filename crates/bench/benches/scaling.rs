//! Complexity scaling of the schedulers (§3 of the paper).
//!
//! The paper bounds balanced weight computation at `O(n²·α(n))` against
//! `O(n²)` for plain list scheduling and calls it "nearly as efficient".
//! This bench measures both over random blocks of growing size so the
//! growth curves (and the balanced/traditional constant-factor gap) can
//! be read straight off the Criterion report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bsched_core::{BalancedWeights, ListScheduler, Ratio, TraditionalWeights, WeightAssigner};
use bsched_dag::{build_dag, AliasModel, DagWorkspace};
use bsched_stats::Pcg32;
use bsched_workload::{random_block, GeneratorConfig};

fn blocks_of(size: usize) -> bsched_ir::BasicBlock {
    let cfg = GeneratorConfig {
        size,
        load_fraction: 0.3,
        chain_fraction: 0.15,
        store_fraction: 0.1,
    };
    random_block(&cfg, &mut Pcg32::seed_from_u64(size as u64))
}

fn bench_weight_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("weights");
    for size in [25usize, 50, 100, 200, 400] {
        let block = blocks_of(size);
        let dag = build_dag(&block, AliasModel::Fortran);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("balanced", size), &dag, |b, dag| {
            let assigner = BalancedWeights::new();
            b.iter(|| black_box(assigner.assign(black_box(dag))));
        });
        // assign_with reuses one workspace across iterations — the warm
        // allocation-free path the compilation pipeline hits for every
        // block after the first. The gap between this and "balanced"
        // (one fresh workspace per call) is the cost of the buffer
        // warm-up alone; the weights produced are identical.
        group.bench_with_input(
            BenchmarkId::new("balanced-reused-workspace", size),
            &dag,
            |b, dag| {
                let assigner = BalancedWeights::new();
                let mut ws = DagWorkspace::new();
                b.iter(|| black_box(assigner.assign_with(black_box(dag), &mut ws)));
            },
        );
        group.bench_with_input(BenchmarkId::new("balanced-approx", size), &dag, |b, dag| {
            let assigner =
                BalancedWeights::new().with_method(bsched_dag::ChancesMethod::LevelApprox);
            b.iter(|| black_box(assigner.assign(black_box(dag))));
        });
        group.bench_with_input(BenchmarkId::new("traditional", size), &dag, |b, dag| {
            let assigner = TraditionalWeights::new(Ratio::from_int(2));
            b.iter(|| black_box(assigner.assign(black_box(dag))));
        });
    }
    group.finish();
}

fn bench_list_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("list-scheduler");
    for size in [50usize, 200, 400] {
        let block = blocks_of(size);
        let dag = build_dag(&block, AliasModel::Fortran);
        let scheduler = ListScheduler::new();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("balanced", size), &dag, |b, dag| {
            b.iter(|| black_box(scheduler.run(black_box(dag), &BalancedWeights::new())));
        });
        group.bench_with_input(BenchmarkId::new("traditional", size), &dag, |b, dag| {
            b.iter(|| {
                black_box(
                    scheduler.run(black_box(dag), &TraditionalWeights::new(Ratio::from_int(2))),
                )
            });
        });
    }
    group.finish();
}

fn bench_dag_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag-build");
    for size in [100usize, 400] {
        let block = blocks_of(size);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &block, |b, block| {
            b.iter(|| black_box(build_dag(black_box(block), AliasModel::Fortran)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weight_assignment,
    bench_list_scheduling,
    bench_dag_construction
);
criterion_main!(benches);
