//! Throughput of the instruction-level simulator and the full §4.3
//! measurement protocol.
//!
//! These benches size the cost of regenerating the paper's tables: one
//! `simulate_block` call per (block, run), 30 runs per block, bootstrap
//! on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use bsched_cpusim::{simulate_block, simulate_runs, ProcessorModel};
use bsched_memsim::{CacheModel, MemorySystem, NetworkModel};
use bsched_pipeline::{evaluate, EvalConfig, Pipeline, SchedulerChoice};
use bsched_stats::Pcg32;
use bsched_workload::{perfect, random_block, GeneratorConfig};

fn bench_single_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate-block");
    for size in [50usize, 200] {
        let cfg = GeneratorConfig {
            size,
            ..GeneratorConfig::default()
        };
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(7));
        group.throughput(Throughput::Elements(size as u64));
        for (name, model) in [
            ("unlimited", ProcessorModel::Unlimited),
            ("max8", ProcessorModel::max_8()),
            ("len8", ProcessorModel::len_8()),
        ] {
            group.bench_with_input(BenchmarkId::new(name, size), &block, |b, block| {
                let mem = CacheModel::l80_10();
                let mut rng = Pcg32::seed_from_u64(1);
                b.iter(|| black_box(simulate_block(black_box(block), &mem, model, &mut rng)));
            });
        }
    }
    group.finish();
}

fn bench_thirty_runs(c: &mut Criterion) {
    let cfg = GeneratorConfig {
        size: 100,
        ..GeneratorConfig::default()
    };
    let block = random_block(&cfg, &mut Pcg32::seed_from_u64(11));
    let mem: MemorySystem = NetworkModel::new(3.0, 5.0).into();
    c.bench_function("simulate-30-runs", |b| {
        let rng = Pcg32::seed_from_u64(2);
        b.iter(|| {
            black_box(simulate_runs(
                &block,
                &mem,
                ProcessorModel::Unlimited,
                30,
                &rng,
            ))
        });
    });
}

fn bench_full_protocol(c: &mut Criterion) {
    // One full Table 2 cell: compile MDG with both schedulers and run the
    // bootstrap comparison.
    let bench = perfect::mdg();
    let pipeline = Pipeline::default();
    let compiled = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .unwrap();
    let mem: MemorySystem = NetworkModel::new(2.0, 5.0).into();
    c.bench_function("evaluate-mdg", |b| {
        let cfg = EvalConfig::default();
        b.iter(|| black_box(evaluate(&compiled, &mem, &cfg)));
    });
    c.bench_function("compile-mdg-balanced", |b| {
        b.iter(|| black_box(pipeline.compile(bench.function(), &SchedulerChoice::balanced())));
    });
}

fn bench_register_allocation(c: &mut Criterion) {
    use bsched_regalloc::{allocate, allocate_usage_count, AllocatorConfig};
    let cfg = GeneratorConfig {
        size: 150,
        load_fraction: 0.35,
        ..GeneratorConfig::default()
    };
    let block = random_block(&cfg, &mut Pcg32::seed_from_u64(21));
    let alloc_cfg = AllocatorConfig::mips_default();
    c.bench_function("regalloc-belady-150", |b| {
        b.iter(|| black_box(allocate(&block, &alloc_cfg).expect("allocates")));
    });
    c.bench_function("regalloc-usage-count-150", |b| {
        b.iter(|| black_box(allocate_usage_count(&block, &alloc_cfg).expect("allocates")));
    });
}

fn bench_bootstrap(c: &mut Criterion) {
    use bsched_stats::{bootstrap_means, paired_improvement};
    let mut rng = Pcg32::seed_from_u64(5);
    let samples: Vec<f64> = (0..30)
        .map(|_| 1000.0 + rng.next_standard_normal() * 25.0)
        .collect();
    c.bench_function("bootstrap-30x100", |b| {
        b.iter(|| black_box(bootstrap_means(&samples, 100, &mut rng)));
    });
    let t = bootstrap_means(&samples, 100, &mut rng);
    let bal: Vec<f64> = t.iter().map(|x| x * 0.9).collect();
    c.bench_function("paired-improvement-100", |b| {
        b.iter(|| black_box(paired_improvement(&t, &bal)));
    });
}

criterion_group!(
    benches,
    bench_single_run,
    bench_thirty_runs,
    bench_full_protocol,
    bench_register_allocation,
    bench_bootstrap
);
criterion_main!(benches);
