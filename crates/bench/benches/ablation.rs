//! Ablations of the design choices DESIGN.md calls out.
//!
//! Measured quantity: total bootstrap mean runtime of the whole
//! Perfect-Club workload under `N(2,5)` (lower is better). Criterion
//! reports the *time to compute* each variant too, but the interesting
//! output is the `eprintln!` quality summary each bench emits once —
//! ablations are about schedule quality, not harness speed.
//!
//! 1. exact `Chances` vs the paper's level approximation;
//! 2. per-load balanced weights vs the §3 block-average variant;
//! 3. FIFO spill pool vs the original fixed pool;
//! 4. Fortran aliasing vs conservative C (paper Fig. 8);
//! 5. weight rounding mode;
//! 6. one vs two scheduling passes (§4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bsched_core::{Direction, Ratio, Rounding};
use bsched_cpusim::ProcessorModel;
use bsched_dag::{AliasModel, ChancesMethod};
use bsched_memsim::NetworkModel;
use bsched_pipeline::{evaluate, EvalConfig, Pipeline, SchedulerChoice};
use bsched_regalloc::{AllocatorConfig, PoolPolicy};
use bsched_workload::perfect_club;

/// Total workload runtime (frequency-weighted bootstrap mean) for one
/// pipeline + scheduler configuration.
fn workload_runtime(pipeline: &Pipeline, choice: &SchedulerChoice) -> f64 {
    let mem = NetworkModel::new(2.0, 5.0);
    let cfg = EvalConfig {
        runs: 10,
        processor: ProcessorModel::Unlimited,
        ..EvalConfig::default()
    };
    perfect_club()
        .iter()
        .map(|b| {
            let prog = pipeline.compile(b.function(), choice).expect("compile");
            evaluate(&prog, &mem, &cfg).mean_runtime
        })
        .sum()
}

fn ablation(c: &mut Criterion, name: &str, pipeline: Pipeline, choice: SchedulerChoice) {
    let runtime = workload_runtime(&pipeline, &choice);
    eprintln!("[ablation] {name}: workload runtime {runtime:.0} cycles");
    c.bench_function(name, |b| {
        // Benchmark only the compile step (quality already reported).
        let suite = perfect_club();
        b.iter(|| {
            for bench in &suite {
                black_box(
                    pipeline
                        .compile(bench.function(), &choice)
                        .expect("compile"),
                );
            }
        });
    });
}

fn ablations(c: &mut Criterion) {
    let base = Pipeline::default();

    ablation(
        c,
        "ablation/balanced-exact",
        base,
        SchedulerChoice::balanced(),
    );
    ablation(
        c,
        "ablation/balanced-level-approx",
        base,
        SchedulerChoice::Balanced {
            method: ChancesMethod::LevelApprox,
        },
    );
    ablation(
        c,
        "ablation/average-weights",
        base,
        SchedulerChoice::Average,
    );
    ablation(
        c,
        "ablation/traditional-w2",
        base,
        SchedulerChoice::traditional(Ratio::from_int(2)),
    );

    ablation(
        c,
        "ablation/fixed-spill-pool",
        Pipeline {
            allocator: AllocatorConfig::gcc_original(),
            ..base
        },
        SchedulerChoice::balanced(),
    );
    ablation(
        c,
        "ablation/fifo-spill-pool",
        Pipeline {
            allocator: AllocatorConfig {
                policy: PoolPolicy::Fifo,
                ..AllocatorConfig::gcc_original()
            },
            ..base
        },
        SchedulerChoice::balanced(),
    );

    ablation(
        c,
        "ablation/c-conservative-alias",
        Pipeline {
            alias: AliasModel::CConservative,
            ..base
        },
        SchedulerChoice::balanced(),
    );

    ablation(
        c,
        "ablation/rounding-floor",
        Pipeline {
            rounding: Rounding::Floor,
            ..base
        },
        SchedulerChoice::balanced(),
    );
    ablation(
        c,
        "ablation/rounding-ceil",
        Pipeline {
            rounding: Rounding::Ceil,
            ..base
        },
        SchedulerChoice::balanced(),
    );

    ablation(
        c,
        "ablation/single-pass",
        Pipeline {
            second_pass: false,
            ..base
        },
        SchedulerChoice::balanced(),
    );
    ablation(
        c,
        "ablation/rename-after-alloc",
        Pipeline {
            rename_after_alloc: true,
            ..base
        },
        SchedulerChoice::balanced(),
    );
    ablation(
        c,
        "ablation/rename-with-fixed-pool",
        Pipeline {
            rename_after_alloc: true,
            allocator: AllocatorConfig::gcc_original(),
            ..base
        },
        SchedulerChoice::balanced(),
    );
    ablation(
        c,
        "ablation/top-down",
        Pipeline {
            direction: Direction::TopDown,
            ..base
        },
        SchedulerChoice::balanced(),
    );
    ablation(
        c,
        "ablation/usage-count-alloc",
        Pipeline {
            allocation: bsched_pipeline::AllocationStrategy::UsageCount,
            ..base
        },
        SchedulerChoice::balanced(),
    );

    // §6 superblocks: fuse each benchmark's blocks pairwise and rerun the
    // balanced-vs-traditional comparison on the enlarged blocks.
    {
        use bsched_ir::Function;
        use bsched_workload::superblocks_of;
        let mem = NetworkModel::new(2.0, 5.0);
        let cfg = EvalConfig {
            runs: 10,
            processor: ProcessorModel::Unlimited,
            ..EvalConfig::default()
        };
        let runtime_of = |choice: &SchedulerChoice| -> f64 {
            perfect_club()
                .iter()
                .map(|b| {
                    let fused = Function::new(b.name(), superblocks_of(b.function(), 2));
                    let prog = base.compile(&fused, choice).expect("compile");
                    evaluate(&prog, &mem, &cfg).mean_runtime
                })
                .sum()
        };
        let bal = runtime_of(&SchedulerChoice::balanced());
        let trad = runtime_of(&SchedulerChoice::traditional(Ratio::from_int(2)));
        eprintln!(
            "[ablation] ablation/superblock-2: balanced {bal:.0} vs traditional {trad:.0} cycles \
             ({:+.1}%)",
            (trad - bal) / trad * 100.0
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = ablations
}
criterion_main!(benches);
