//! Seeded random basic-block generation.
//!
//! Property tests and the complexity-scaling benches need code DAGs of
//! controlled size and shape beyond the fixed kernel library. This
//! generator emits valid straight-line blocks (every use dominated by a
//! def) with tunable load density and dependence depth, deterministically
//! from a seed.

use bsched_ir::{BasicBlock, BlockBuilder, Reg};
use bsched_stats::Pcg32;

/// Parameters for random block generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneratorConfig {
    /// Approximate instruction count of the block.
    pub size: usize,
    /// Fraction of generated instructions that are loads (0..=1).
    pub load_fraction: f64,
    /// Fraction of loads whose address depends on an earlier load
    /// (pointer chasing ⇒ loads in series).
    pub chain_fraction: f64,
    /// Fraction of stores among non-load instructions.
    pub store_fraction: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            size: 50,
            load_fraction: 0.3,
            chain_fraction: 0.2,
            store_fraction: 0.1,
        }
    }
}

/// Generates a random but well-formed basic block.
///
/// Determinism: the same `config` and `rng` state always produce the same
/// block.
///
/// # Panics
///
/// Panics if `config.size` is zero.
#[must_use]
pub fn random_block(config: &GeneratorConfig, rng: &mut Pcg32) -> BasicBlock {
    assert!(config.size > 0, "block size must be positive");
    let mut b = BlockBuilder::new("random");
    let region = b.fresh_region();
    let base = b.def_int("base");
    let mut int_vals: Vec<Reg> = vec![base];
    let mut fp_vals: Vec<Reg> = Vec::new();
    let mut next_offset: i64 = 0;

    while b.len() < config.size {
        if rng.next_f64() < config.load_fraction {
            // A load; maybe chained through a prior loaded value.
            let addr = if rng.next_f64() < config.chain_fraction && !fp_vals.is_empty() {
                let v = fp_vals[rng.next_index(fp_vals.len())];
                let a = b.int_to_addr("chase", v);
                int_vals.push(a);
                a
            } else {
                int_vals[rng.next_index(int_vals.len())]
            };
            next_offset += 8;
            let v = b.load_region("ld", region, addr, Some(next_offset));
            fp_vals.push(v);
        } else if !fp_vals.is_empty() && rng.next_f64() < config.store_fraction {
            let v = fp_vals[rng.next_index(fp_vals.len())];
            next_offset += 8;
            b.store_region(region, v, base, Some(next_offset));
        } else if fp_vals.len() >= 2 {
            let x = fp_vals[rng.next_index(fp_vals.len())];
            let y = fp_vals[rng.next_index(fp_vals.len())];
            let v = match rng.next_below(3) {
                0 => b.fadd("a", x, y),
                1 => b.fmul("m", x, y),
                _ => b.fsub("s", x, y),
            };
            fp_vals.push(v);
        } else {
            let v = b.fconst("c", 1.0);
            fp_vals.push(v);
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::{build_dag, AliasModel};

    #[test]
    fn generation_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = random_block(&cfg, &mut Pcg32::seed_from_u64(1));
        let b = random_block(&cfg, &mut Pcg32::seed_from_u64(1));
        assert_eq!(a, b);
        let c = random_block(&cfg, &mut Pcg32::seed_from_u64(2));
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn size_is_respected_approximately() {
        for size in [5, 50, 200] {
            let cfg = GeneratorConfig {
                size,
                ..Default::default()
            };
            let block = random_block(&cfg, &mut Pcg32::seed_from_u64(3));
            assert!(block.len() >= size);
            assert!(block.len() <= size + 2, "{} vs {size}", block.len());
        }
    }

    #[test]
    fn generated_blocks_always_build_valid_dags() {
        for seed in 0..20 {
            let cfg = GeneratorConfig {
                size: 80,
                load_fraction: 0.4,
                ..Default::default()
            };
            let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
            let dag = build_dag(&block, AliasModel::Fortran);
            for e in dag.edges() {
                assert!(e.from < e.to, "acyclic by construction");
            }
        }
    }

    #[test]
    fn load_fraction_controls_density() {
        let sparse_cfg = GeneratorConfig {
            size: 300,
            load_fraction: 0.1,
            ..Default::default()
        };
        let dense_cfg = GeneratorConfig {
            size: 300,
            load_fraction: 0.6,
            ..Default::default()
        };
        let sparse = random_block(&sparse_cfg, &mut Pcg32::seed_from_u64(9));
        let dense = random_block(&dense_cfg, &mut Pcg32::seed_from_u64(9));
        assert!(dense.load_ids().len() > 2 * sparse.load_ids().len());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_size_panics() {
        let _ = random_block(
            &GeneratorConfig {
                size: 0,
                ..Default::default()
            },
            &mut Pcg32::seed_from_u64(0),
        );
    }
}
