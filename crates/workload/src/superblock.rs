//! Superblock formation (§6).
//!
//! The paper notes balanced scheduling "should be applicable to …
//! techniques that enlarge basic blocks (trace scheduling and software
//! pipelining)". This module provides the enlarging transformation:
//! fusing consecutive basic blocks of a trace into one superblock, with
//! virtual registers and memory regions renumbered so the fused block is
//! well-formed. More instructions per block means more load-level
//! parallelism for the weight algorithm to distribute — the ablation
//! bench quantifies how much that widens balanced scheduling's lead.
//!
//! Fusion here models a straight-line trace (each block falls through to
//! the next); the blocks of our workload are loop bodies, so fusing k
//! copies of a body is the trace through k consecutive iterations of an
//! outer loop. The fused frequency is the *minimum* of the member
//! frequencies (a trace executes only when every member does).

use std::collections::HashMap;

use bsched_ir::{BasicBlock, Inst, Reg, RegionId, VirtReg};

/// Fuses `blocks` into one superblock.
///
/// Virtual registers are renumbered into one namespace per class; memory
/// regions keep their identity *within* a block but are made distinct
/// *across* blocks (two different source blocks never share arrays —
/// matching traces through distinct loop nests; fusing iterations of the
/// same loop should instead use the kernel's `unroll`).
///
/// # Panics
///
/// Panics if `blocks` is empty or any block contains physical registers
/// (superblocks are formed before register allocation, like the paper's
/// first scheduling pass).
#[must_use]
pub fn fuse_blocks(name: &str, blocks: &[&BasicBlock]) -> BasicBlock {
    assert!(!blocks.is_empty(), "cannot fuse zero blocks");
    let mut insts: Vec<Inst> = Vec::new();
    let mut next_reg: HashMap<bsched_ir::RegClass, u32> = HashMap::new();
    let mut frequency = f64::INFINITY;

    for (block_no, block) in blocks.iter().enumerate() {
        frequency = frequency.min(block.frequency());
        let mut reg_map: HashMap<VirtReg, VirtReg> = HashMap::new();
        for inst in block.insts() {
            let mut renamed = inst.clone();
            renamed.map_regs(|r| match r {
                Reg::Virt(v) => {
                    let mapped = *reg_map.entry(v).or_insert_with(|| {
                        let counter = next_reg.entry(v.class()).or_insert(0);
                        let fresh = VirtReg::new(v.class(), *counter);
                        *counter += 1;
                        fresh
                    });
                    Reg::Virt(mapped)
                }
                Reg::Phys(_) => panic!("superblocks are formed before register allocation"),
            });
            // Regions: offset each block's regions into a distinct band.
            let renamed = match renamed.mem() {
                Some(access) => {
                    let region =
                        RegionId::new(access.loc().region().raw() + (block_no as u32) * 10_000);
                    let loc = match access.loc().offset() {
                        Some(k) => bsched_ir::MemLoc::known(region, k),
                        None => bsched_ir::MemLoc::unknown(region),
                    };
                    let new_access = bsched_ir::MemAccess::new(loc, access.kind(), access.width());
                    let mut inst2 = Inst::new(
                        renamed.opcode(),
                        renamed.defs().to_vec(),
                        renamed.uses().to_vec(),
                        Some(new_access),
                    );
                    if let Some(n) = renamed.name() {
                        inst2 = inst2.with_name(n);
                    }
                    inst2
                }
                None => renamed,
            };
            insts.push(renamed);
        }
    }
    BasicBlock::new(name, insts).with_frequency(frequency)
}

/// Fuses every function block into one superblock per group of
/// `group_size` consecutive blocks, returning the superblock list.
#[must_use]
pub fn superblocks_of(func: &bsched_ir::Function, group_size: usize) -> Vec<BasicBlock> {
    assert!(group_size >= 1, "group size must be positive");
    func.blocks()
        .chunks(group_size)
        .enumerate()
        .map(|(i, chunk)| {
            let refs: Vec<&BasicBlock> = chunk.iter().collect();
            fuse_blocks(&format!("{}.sb{i}", func.name()), &refs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::lower::lower_kernel;
    use bsched_dag::{build_dag, AliasModel};
    use bsched_ir::Function;

    fn two_blocks() -> (BasicBlock, BasicBlock) {
        (
            lower_kernel(&kernels::daxpy().with_unroll(2), 100.0),
            lower_kernel(&kernels::stencil3().with_unroll(2), 40.0),
        )
    }

    #[test]
    fn fusion_concatenates_and_renumbers() {
        let (a, b) = two_blocks();
        let fused = fuse_blocks("sb", &[&a, &b]);
        assert_eq!(fused.len(), a.len() + b.len());
        assert_eq!(fused.frequency(), 40.0, "minimum frequency");
        // All registers virtual, and numbering has no duplicates per def.
        let mut seen = std::collections::HashSet::new();
        for inst in fused.insts() {
            for d in inst.defs() {
                assert!(d.is_virt());
                assert!(seen.insert(*d), "register {d} defined twice");
            }
        }
    }

    #[test]
    fn fused_block_builds_valid_dag() {
        let (a, b) = two_blocks();
        let fused = fuse_blocks("sb", &[&a, &b]);
        let dag = build_dag(&fused, AliasModel::Fortran);
        assert_eq!(dag.len(), fused.len());
        for e in dag.edges() {
            assert!(e.from < e.to);
        }
        // No cross-block register or memory edges: the halves are
        // independent, so some instruction in the second half has no
        // predecessor in the first half.
        let closures = bsched_dag::Closures::compute(&dag);
        let first_half_len = a.len();
        let second = bsched_ir::InstId::from_usize(first_half_len);
        assert!(
            closures.preds(second).is_empty(),
            "block boundary leaks dependences"
        );
    }

    #[test]
    fn fusion_increases_load_level_parallelism() {
        use bsched_core::{BalancedWeights, WeightAssigner};
        let (a, b) = two_blocks();
        let fused = fuse_blocks("sb", &[&a, &b]);
        let dag_a = build_dag(&a, AliasModel::Fortran);
        let dag_f = build_dag(&fused, AliasModel::Fortran);
        let max_weight = |dag: &bsched_dag::CodeDag| {
            let w = BalancedWeights::new().assign(dag);
            dag.load_ids().iter().map(|&l| w.weight(l)).max().unwrap()
        };
        assert!(
            max_weight(&dag_f) > max_weight(&dag_a),
            "the superblock exposes more parallelism per load"
        );
    }

    #[test]
    fn superblocks_of_groups() {
        let func = Function::new(
            "f",
            vec![
                lower_kernel(&kernels::daxpy(), 10.0),
                lower_kernel(&kernels::dot(), 20.0),
                lower_kernel(&kernels::stencil3(), 30.0),
            ],
        );
        let sbs = superblocks_of(&func, 2);
        assert_eq!(sbs.len(), 2);
        assert_eq!(
            sbs[0].len(),
            func.blocks()[0].len() + func.blocks()[1].len()
        );
        assert_eq!(sbs[1].len(), func.blocks()[2].len());
        assert_eq!(sbs[0].frequency(), 10.0);
    }

    #[test]
    #[should_panic(expected = "cannot fuse zero blocks")]
    fn empty_fusion_panics() {
        let _ = fuse_blocks("sb", &[]);
    }
}
