//! Lowering kernels to the RISC IR.
//!
//! Mirrors the paper's compilation setup (§4.1–4.2): each declared array
//! becomes its own memory region (the Fig. 8 Fortran-semantics
//! transformation — distinct arrays never alias), loop bodies are unrolled
//! into one straight-line basic block over virtual registers, and every
//! `Index::Elem` becomes a known byte offset so the DAG builder can
//! disambiguate unrolled references.

use bsched_ir::{BasicBlock, BlockBuilder, Reg, RegionId};

use crate::kernel::{BinOp, Expr, Index, Kernel, Stmt};
use crate::parse::ParsedKernel;
use crate::span::{SourceMap, Span};

/// Element size in bytes (double precision, as the Fortran codes use).
pub const ELEM_BYTES: i64 = 8;

/// Why a kernel cannot be lowered to a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum LowerError {
    /// The kernel references an array it never declared.
    UnknownArray {
        /// The referenced array index.
        index: usize,
        /// How many arrays the kernel declares.
        declared: usize,
    },
    /// The kernel references an accumulator it never declared.
    UnknownAccumulator {
        /// The referenced accumulator index.
        index: usize,
        /// How many accumulators the kernel declares.
        declared: usize,
    },
    /// The requested execution frequency is not a positive finite number.
    InvalidFrequency {
        /// The offending frequency.
        value: f64,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::UnknownArray { index, declared } => {
                write!(
                    f,
                    "kernel references array {index}, but declares only {declared}"
                )
            }
            LowerError::UnknownAccumulator { index, declared } => {
                write!(
                    f,
                    "kernel references accumulator {index}, but declares only {declared}"
                )
            }
            LowerError::InvalidFrequency { value } => {
                write!(
                    f,
                    "block frequency must be positive and finite, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for LowerError {}

fn check_array(kernel: &Kernel, arr: crate::kernel::ArrayRef) -> Result<(), LowerError> {
    if arr.0 < kernel.arrays.len() {
        Ok(())
    } else {
        Err(LowerError::UnknownArray {
            index: arr.0,
            declared: kernel.arrays.len(),
        })
    }
}

fn check_acc(kernel: &Kernel, k: usize) -> Result<(), LowerError> {
    if k < kernel.accumulators {
        Ok(())
    } else {
        Err(LowerError::UnknownAccumulator {
            index: k,
            declared: kernel.accumulators,
        })
    }
}

fn check_expr(kernel: &Kernel, expr: &Expr) -> Result<(), LowerError> {
    match expr {
        Expr::Load(arr, _) => check_array(kernel, *arr),
        Expr::Const(_) => Ok(()),
        Expr::Acc(k) => check_acc(kernel, *k),
        Expr::Bin(_, lhs, rhs) => {
            check_expr(kernel, lhs)?;
            check_expr(kernel, rhs)
        }
        Expr::Neg(inner) => check_expr(kernel, inner),
    }
}

/// Lowers `kernel` into a single basic block with execution frequency
/// `frequency`.
///
/// The block layout per unrolled copy follows the source order of the
/// statements; instruction scheduling is the next pipeline stage's job,
/// so no reordering happens here.
///
/// # Errors
///
/// Rejects a non-positive or non-finite `frequency` and any reference to
/// an undeclared array or accumulator — everything is checked up front,
/// so a failed call builds nothing.
pub fn try_lower_kernel(kernel: &Kernel, frequency: f64) -> Result<BasicBlock, LowerError> {
    Ok(try_lower_kernel_mapped(kernel, frequency, &[])?.0)
}

/// [`try_lower_kernel`] that also maps every emitted instruction back to
/// the source statement it came from.
///
/// `stmt_spans` is aligned with `kernel.body` (the parser produces it as
/// [`ParsedKernel::stmt_spans`]); statements beyond its length — and the
/// lowering's own prelude instructions — map to `None` in the returned
/// [`SourceMap`].
///
/// # Errors
///
/// Same contract as [`try_lower_kernel`].
pub fn try_lower_kernel_mapped(
    kernel: &Kernel,
    frequency: f64,
    stmt_spans: &[Span],
) -> Result<(BasicBlock, SourceMap), LowerError> {
    if !frequency.is_finite() || frequency <= 0.0 {
        return Err(LowerError::InvalidFrequency { value: frequency });
    }
    for stmt in &kernel.body {
        match stmt {
            Stmt::Store(arr, _, expr) => {
                check_array(kernel, *arr)?;
                check_expr(kernel, expr)?;
            }
            Stmt::SetAcc(k, expr) => {
                check_acc(kernel, *k)?;
                check_expr(kernel, expr)?;
            }
        }
    }
    Ok(lower_checked(kernel, frequency, stmt_spans))
}

/// Lowers a [`ParsedKernel`] with full source tracking.
///
/// # Errors
///
/// Same contract as [`try_lower_kernel`].
pub fn try_lower_parsed(parsed: &ParsedKernel) -> Result<(BasicBlock, SourceMap), LowerError> {
    try_lower_kernel_mapped(&parsed.kernel, parsed.frequency, &parsed.stmt_spans)
}

/// [`try_lower_kernel`] for kernels known to be well-formed.
///
/// # Panics
///
/// Panics if the kernel references an undeclared array or accumulator,
/// or if `frequency` is not positive and finite.
#[must_use]
pub fn lower_kernel(kernel: &Kernel, frequency: f64) -> BasicBlock {
    try_lower_kernel(kernel, frequency).unwrap_or_else(|e| panic!("{}: {e}", kernel.name))
}

fn lower_checked(kernel: &Kernel, frequency: f64, stmt_spans: &[Span]) -> (BasicBlock, SourceMap) {
    let mut b = BlockBuilder::new(kernel.name.clone());
    b.set_frequency(frequency);

    // One region and one base register per array.
    let regions: Vec<RegionId> = kernel.arrays.iter().map(|_| b.fresh_region()).collect();
    let bases: Vec<Reg> = kernel
        .arrays
        .iter()
        .map(|a| b.def_int(&format!("&{}", a.name)))
        .collect();

    // Loop-carried accumulators start as constants and are threaded
    // through the unrolled copies, creating the serial chains real dot
    // products and recurrences have.
    let mut accs: Vec<Reg> = (0..kernel.accumulators)
        .map(|k| b.fconst(&format!("acc{k}"), 0.0))
        .collect();

    // Prelude instructions (bases, accumulator seeds) have no statement.
    let mut spans: Vec<Option<Span>> = vec![None; b.len()];

    for copy in 0..kernel.unroll {
        let shift = i64::from(copy) * kernel.stride;
        for (stmt_idx, stmt) in kernel.body.iter().enumerate() {
            let before = b.len();
            match stmt {
                Stmt::Store(arr, idx, expr) => {
                    let v = lower_expr(&mut b, kernel, &regions, &bases, &accs, expr, shift);
                    let (region, base) = (regions[arr.0], bases[arr.0]);
                    match shifted(*idx, shift) {
                        Some(elem) => {
                            b.store_region(region, v, base, Some(elem * ELEM_BYTES));
                        }
                        None => {
                            b.store_region(region, v, base, None);
                        }
                    }
                }
                Stmt::SetAcc(k, expr) => {
                    let v = lower_expr(&mut b, kernel, &regions, &bases, &accs, expr, shift);
                    accs[*k] = v;
                }
            }
            spans.resize(b.len(), stmt_spans.get(stmt_idx).copied());
            debug_assert!(b.len() >= before);
        }
    }
    (b.finish(), SourceMap::new(spans))
}

fn shifted(idx: Index, shift: i64) -> Option<i64> {
    match idx {
        Index::Elem(e) => Some(e + shift),
        Index::Unknown => None,
    }
}

fn lower_expr(
    b: &mut BlockBuilder,
    kernel: &Kernel,
    regions: &[RegionId],
    bases: &[Reg],
    accs: &[Reg],
    expr: &Expr,
    shift: i64,
) -> Reg {
    match expr {
        Expr::Load(arr, idx) => {
            let name = format!("{}[]", kernel.arrays[arr.0].name);
            b.load_region(
                &name,
                regions[arr.0],
                bases[arr.0],
                shifted(*idx, shift).map(|e| e * ELEM_BYTES),
            )
        }
        Expr::Const(v) => b.fconst("c", *v),
        Expr::Acc(k) => accs[*k],
        Expr::Bin(op, lhs, rhs) => {
            let l = lower_expr(b, kernel, regions, bases, accs, lhs, shift);
            let r = lower_expr(b, kernel, regions, bases, accs, rhs, shift);
            match op {
                BinOp::Add => b.fadd("t", l, r),
                BinOp::Sub => b.fsub("t", l, r),
                BinOp::Mul => b.fmul("t", l, r),
                BinOp::Div => b.fdiv("t", l, r),
            }
        }
        Expr::Neg(inner) => {
            let v = lower_expr(b, kernel, regions, bases, accs, inner, shift);
            // Negation as 0 - v keeps the opcode set minimal.
            let zero = b.fconst("c0", 0.0);
            b.fsub("neg", zero, v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::ArrayRef;
    use bsched_dag::{build_dag, AliasModel, DepKind};
    use bsched_ir::InstId;

    fn daxpy() -> Kernel {
        Kernel::new(
            "daxpy",
            vec!["x", "y"],
            vec![Stmt::Store(
                ArrayRef(1),
                Index::Elem(0),
                Expr::add(
                    Expr::mul(Expr::Const(3.0), Expr::Load(ArrayRef(0), Index::Elem(0))),
                    Expr::Load(ArrayRef(1), Index::Elem(0)),
                ),
            )],
        )
    }

    #[test]
    fn daxpy_block_shape() {
        let block = lower_kernel(&daxpy(), 100.0);
        // 2 bases + const + 2 loads + mul + add + store = 8.
        assert_eq!(block.len(), 8);
        assert_eq!(block.frequency(), 100.0);
        assert_eq!(block.load_ids().len(), 2);
        assert_eq!(block.insts().iter().filter(|i| i.is_store()).count(), 1);
    }

    #[test]
    fn unrolling_replicates_and_shifts() {
        let k = daxpy().with_unroll(4);
        let block = lower_kernel(&k, 1.0);
        // Bases/consts replicated per copy except the two array bases.
        assert_eq!(block.load_ids().len(), 8);
        let offsets: Vec<Option<i64>> = block
            .insts()
            .iter()
            .filter(|i| i.is_store())
            .map(|i| i.mem().unwrap().loc().offset())
            .collect();
        assert_eq!(offsets, vec![Some(0), Some(8), Some(16), Some(24)]);
    }

    #[test]
    fn unrolled_copies_are_independent_under_fortran() {
        // Each copy's `load y[i] → store y[i]` anti-dependence is real,
        // but no memory edge may cross between unrolled copies: distinct
        // known offsets disambiguate them (the point of Fig. 8).
        let k = daxpy().with_unroll(2);
        let block = lower_kernel(&k, 1.0);
        let dag = build_dag(&block, AliasModel::Fortran);
        for e in dag.edges().filter(|e| e.kind == DepKind::Memory) {
            let from = block.inst(e.from).mem().unwrap().loc();
            let to = block.inst(e.to).mem().unwrap().loc();
            assert_eq!(
                from.offset(),
                to.offset(),
                "only same-element accesses are ordered: {e:?}"
            );
        }
    }

    #[test]
    fn accumulators_create_serial_chains() {
        // s = s + x[i] unrolled: each copy's add depends on the previous.
        let k = Kernel::new(
            "sum",
            vec!["x"],
            vec![Stmt::SetAcc(
                0,
                Expr::add(Expr::Acc(0), Expr::Load(ArrayRef(0), Index::Elem(0))),
            )],
        )
        .with_accumulators(1)
        .with_unroll(3);
        let block = lower_kernel(&k, 1.0);
        let dag = build_dag(&block, AliasModel::Fortran);
        // Find the three adds; each later add must transitively depend on
        // the earlier one.
        let adds: Vec<InstId> = block
            .iter_ids()
            .filter(|(_, i)| i.opcode() == bsched_ir::Opcode::FAdd)
            .map(|(id, _)| id)
            .collect();
        assert_eq!(adds.len(), 3);
        let closures = bsched_dag::Closures::compute(&dag);
        assert!(closures.succs(adds[0]).contains(adds[1].index()));
        assert!(closures.succs(adds[1]).contains(adds[2].index()));
    }

    #[test]
    fn unknown_index_blocks_disambiguation() {
        let k = Kernel::new(
            "gather",
            vec!["x", "y"],
            vec![
                Stmt::Store(
                    ArrayRef(1),
                    Index::Elem(0),
                    Expr::Load(ArrayRef(0), Index::Unknown),
                ),
                Stmt::Store(ArrayRef(0), Index::Elem(5), Expr::Const(1.0)),
            ],
        );
        let block = lower_kernel(&k, 1.0);
        let dag = build_dag(&block, AliasModel::Fortran);
        // The unknown-offset load of x and the store to x[5] must be
        // ordered even under Fortran rules (same region).
        let load = block.load_ids()[0];
        let store_x = block
            .iter_ids()
            .filter(|(_, i)| i.is_store())
            .map(|(id, _)| id)
            .nth(1)
            .unwrap();
        assert_eq!(dag.edge_kind(load, store_x), Some(DepKind::Memory));
    }

    #[test]
    fn out_of_bounds_references_are_typed_errors() {
        // Store to an undeclared array.
        let k = Kernel::new(
            "bad",
            vec!["x"],
            vec![Stmt::Store(ArrayRef(3), Index::Elem(0), Expr::Const(1.0))],
        );
        assert_eq!(
            try_lower_kernel(&k, 1.0),
            Err(LowerError::UnknownArray {
                index: 3,
                declared: 1
            })
        );
        // Load of an undeclared array, nested inside an expression.
        let k = Kernel::new(
            "bad",
            vec!["x"],
            vec![Stmt::Store(
                ArrayRef(0),
                Index::Elem(0),
                Expr::add(Expr::Const(1.0), Expr::Load(ArrayRef(7), Index::Elem(0))),
            )],
        );
        assert!(matches!(
            try_lower_kernel(&k, 1.0),
            Err(LowerError::UnknownArray { index: 7, .. })
        ));
        // Undeclared accumulator.
        let k = Kernel::new("bad", vec!["x"], vec![Stmt::SetAcc(2, Expr::Const(0.0))]);
        assert_eq!(
            try_lower_kernel(&k, 1.0),
            Err(LowerError::UnknownAccumulator {
                index: 2,
                declared: 0
            })
        );
    }

    #[test]
    fn invalid_frequencies_are_rejected() {
        let k = daxpy();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = try_lower_kernel(&k, bad).unwrap_err();
            assert!(
                matches!(err, LowerError::InvalidFrequency { .. }),
                "{bad}: {err}"
            );
        }
        assert!(try_lower_kernel(&k, 100.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "references accumulator")]
    fn panicking_wrapper_names_the_kernel() {
        let k = Kernel::new("bad", vec!["x"], vec![Stmt::SetAcc(0, Expr::Const(0.0))]);
        let _ = lower_kernel(&k, 1.0);
    }

    #[test]
    fn source_map_covers_every_instruction() {
        // Two statements, unrolled twice: the prelude (two bases) maps to
        // None, every other instruction to its statement's span — the
        // same span in both unrolled copies.
        let src = "kernel k {\n  arrays x, y;\n  unroll 2;\n  y[0] = x[0] + 1;\n  x[1] = 2;\n}";
        let parsed = crate::parse::parse_kernel(src).unwrap();
        let (block, map) = try_lower_parsed(&parsed).unwrap();
        assert_eq!(map.len(), block.len());
        let s1 = crate::span::Span::new(4, 3);
        let s2 = crate::span::Span::new(5, 3);
        let spans: Vec<Option<crate::span::Span>> =
            block.iter_ids().map(|(id, _)| map.get(id)).collect();
        assert_eq!(&spans[..2], &[None, None], "array bases have no span");
        assert!(spans[2..].iter().all(Option::is_some));
        // Both statements appear, and each statement's span covers a
        // contiguous run per unrolled copy.
        assert_eq!(spans.iter().filter(|s| **s == Some(s1)).count(), 8);
        assert_eq!(spans.iter().filter(|s| **s == Some(s2)).count(), 4);
        // Store instructions carry their statement's span.
        for (id, inst) in block.iter_ids() {
            if inst.is_store() {
                assert!(map.get(id).is_some());
            }
        }
    }

    #[test]
    fn negation_lowerse_to_sub() {
        let k = Kernel::new(
            "neg",
            vec!["x"],
            vec![Stmt::Store(
                ArrayRef(0),
                Index::Elem(1),
                Expr::Neg(Box::new(Expr::Load(ArrayRef(0), Index::Elem(0)))),
            )],
        );
        let block = lower_kernel(&k, 1.0);
        assert!(block
            .insts()
            .iter()
            .any(|i| i.opcode() == bsched_ir::Opcode::FSub));
    }
}
