//! Workload generation: the paper's Fortran benchmarks, rebuilt.
//!
//! The paper evaluates on the Perfect Club suite compiled by a modified
//! GCC (§4.1–4.2). This crate supplies the equivalent inputs for the
//! reproduction:
//!
//! * [`kernel`] — a mini-language of numeric loop bodies (arrays, FP
//!   arithmetic, loop-carried accumulators, manual unrolling);
//! * [`lower`] — a tiny compiler from kernels to the RISC IR, applying
//!   the paper's Fig. 8 Fortran-aliasing discipline (one region per
//!   array);
//! * [`kernels`] — a library of loop bodies (daxpy, dot, stencils,
//!   MD force pairs, FFT butterflies, recurrences, gathers);
//! * [`perfect`] — eight benchmark stand-ins (`ADM` … `TRACK`) whose
//!   block profiles target each Perfect Club program's qualitative
//!   behaviour in the paper's tables;
//! * [`generator`] — seeded random block generation for property tests
//!   and complexity-scaling benches.
//!
//! # Example
//!
//! ```
//! use bsched_workload::{kernels, lower::lower_kernel, perfect};
//!
//! // A hand-picked kernel…
//! let block = lower_kernel(&kernels::daxpy().with_unroll(4), 250.0);
//! assert_eq!(block.load_ids().len(), 8);
//!
//! // …or the whole workload.
//! let suite = perfect::perfect_club();
//! assert_eq!(suite.len(), 8);
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod kernel;
pub mod kernels;
pub mod lower;
pub mod parse;
pub mod perfect;
pub mod span;
pub mod superblock;

pub use generator::{random_block, GeneratorConfig};
pub use kernel::{ArrayDecl, ArrayRef, BinOp, Expr, Index, Kernel, Stmt};
pub use lower::{
    lower_kernel, try_lower_kernel, try_lower_kernel_mapped, try_lower_parsed, LowerError,
    ELEM_BYTES,
};
pub use parse::{parse_kernel, parse_program, ParseError, ParsedKernel};
pub use perfect::{perfect_club, Benchmark};
pub use span::{SourceMap, Span};
pub use superblock::{fuse_blocks, superblocks_of};
