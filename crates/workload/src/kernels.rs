//! A library of numeric kernels shaped like the Perfect Club hot loops.
//!
//! Each constructor returns one loop iteration; callers pick unroll
//! factors to dial basic-block size and register pressure. The comments
//! note which scheduling property each kernel stresses.

use crate::kernel::{ArrayRef, Expr, Index, Kernel, Stmt};

fn ld(a: usize, e: i64) -> Expr {
    Expr::Load(ArrayRef(a), Index::Elem(e))
}

/// `y[i] = a·x[i] + y[i]` — the classic streaming kernel: two parallel
/// loads per iteration, unrolling multiplies load-level parallelism.
#[must_use]
pub fn daxpy() -> Kernel {
    Kernel::new(
        "daxpy",
        vec!["x", "y"],
        vec![Stmt::Store(
            ArrayRef(1),
            Index::Elem(0),
            Expr::add(Expr::mul(Expr::Const(3.0), ld(0, 0)), ld(1, 0)),
        )],
    )
}

/// `s += x[i]·y[i]` — a reduction: loads are parallel but the accumulator
/// chain is serial, so balanced weights must split parallelism between
/// many loads feeding one chain.
#[must_use]
pub fn dot() -> Kernel {
    Kernel::new(
        "dot",
        vec!["x", "y"],
        vec![Stmt::SetAcc(
            0,
            Expr::add(Expr::Acc(0), Expr::mul(ld(0, 0), ld(1, 0))),
        )],
    )
    .with_accumulators(1)
}

/// `b[i] = c·(a[i-1] + a[i] + a[i+1])` — a 3-point stencil: overlapping
/// loads with known distinct offsets; the Fortran alias model is what
/// lets consecutive iterations schedule together.
#[must_use]
pub fn stencil3() -> Kernel {
    Kernel::new(
        "stencil3",
        vec!["a", "b"],
        vec![Stmt::Store(
            ArrayRef(1),
            Index::Elem(0),
            Expr::mul(
                Expr::Const(1.0 / 3.0),
                Expr::add(Expr::add(ld(0, -1), ld(0, 0)), ld(0, 1)),
            ),
        )],
    )
}

/// A 5-point 2-D stencil row (`ARC2D`-flavoured): heavy load traffic and
/// wide expressions → high register pressure when unrolled.
#[must_use]
pub fn stencil5() -> Kernel {
    // u[i] = c0*v[i] + c1*(v[i-1]+v[i+1]) + c2*(v[i-W]+v[i+W]), W = 64.
    let w = 64;
    Kernel::new(
        "stencil5",
        vec!["v", "u"],
        vec![Stmt::Store(
            ArrayRef(1),
            Index::Elem(0),
            Expr::add(
                Expr::mul(Expr::Const(0.5), ld(0, 0)),
                Expr::add(
                    Expr::mul(Expr::Const(0.25), Expr::add(ld(0, -1), ld(0, 1))),
                    Expr::mul(Expr::Const(0.25), Expr::add(ld(0, -w), ld(0, w))),
                ),
            ),
        )],
    )
}

/// A molecular-dynamics pair interaction (`MDG`-flavoured): six position
/// loads feeding a deep arithmetic pyramid and three force stores —
/// abundant load-level parallelism, the paper's best case. Scalar
/// temporaries (`dx`, `dy`, `dz`, `w`) are held in accumulator registers,
/// as a compiler's CSE would.
#[must_use]
pub fn md_force() -> Kernel {
    // dx = xi[i]-xj[i]; dy = yi[i]-yj[i]; dz = zi[i]-zj[i];
    // r2 = dx²+dy²+dz²; w = 1/r2; f{x,y,z}[i] = w·d{x,y,z}.
    let (dx, dy, dz, w) = (0, 1, 2, 3);
    let r2 = Expr::add(
        Expr::mul(Expr::Acc(dx), Expr::Acc(dx)),
        Expr::add(
            Expr::mul(Expr::Acc(dy), Expr::Acc(dy)),
            Expr::mul(Expr::Acc(dz), Expr::Acc(dz)),
        ),
    );
    Kernel::new(
        "md_force",
        vec!["xi", "xj", "yi", "yj", "zi", "zj", "fx", "fy", "fz"],
        vec![
            Stmt::SetAcc(dx, Expr::sub(ld(0, 0), ld(1, 0))),
            Stmt::SetAcc(dy, Expr::sub(ld(2, 0), ld(3, 0))),
            Stmt::SetAcc(dz, Expr::sub(ld(4, 0), ld(5, 0))),
            Stmt::SetAcc(w, Expr::div(Expr::Const(1.0), r2)),
            Stmt::Store(
                ArrayRef(6),
                Index::Elem(0),
                Expr::mul(Expr::Acc(w), Expr::Acc(dx)),
            ),
            Stmt::Store(
                ArrayRef(7),
                Index::Elem(0),
                Expr::mul(Expr::Acc(w), Expr::Acc(dy)),
            ),
            Stmt::Store(
                ArrayRef(8),
                Index::Elem(0),
                Expr::mul(Expr::Acc(w), Expr::Acc(dz)),
            ),
        ],
    )
    .with_accumulators(4)
}

/// First-order linear recurrence `x[i] = a[i]·x[i-1] + b[i]` — minimal
/// load-level parallelism: the serial chain dominates, modelling the
/// blocks where balanced scheduling has little to work with (`TRACK`).
#[must_use]
pub fn recurrence() -> Kernel {
    Kernel::new(
        "recurrence",
        vec!["a", "b"],
        vec![Stmt::SetAcc(
            0,
            Expr::add(Expr::mul(ld(0, 0), Expr::Acc(0)), ld(1, 0)),
        )],
    )
    .with_accumulators(1)
}

/// A complex FFT butterfly (`QCD2`/`FLO52Q`-flavoured): four loads, four
/// stores, and enough temporaries that aggressive unrolling spills.
#[must_use]
pub fn fft_butterfly() -> Kernel {
    // (ar,ai) and (br,bi); twiddle w = (0.7, 0.7).
    // t = w·b;  b' = a − t;  a' = a + t. Temporaries live in accumulator
    // registers so each array element is loaded once, like CSE'd code.
    let (t_ar, t_ai, t_br, t_bi, t_tr, t_ti) = (0, 1, 2, 3, 4, 5);
    Kernel::new(
        "fft_butterfly",
        vec!["ar", "ai", "br", "bi"],
        vec![
            Stmt::SetAcc(t_ar, ld(0, 0)),
            Stmt::SetAcc(t_ai, ld(1, 0)),
            Stmt::SetAcc(t_br, ld(2, 0)),
            Stmt::SetAcc(t_bi, ld(3, 0)),
            Stmt::SetAcc(
                t_tr,
                Expr::sub(
                    Expr::mul(Expr::Const(0.7), Expr::Acc(t_br)),
                    Expr::mul(Expr::Const(0.7), Expr::Acc(t_bi)),
                ),
            ),
            Stmt::SetAcc(
                t_ti,
                Expr::add(
                    Expr::mul(Expr::Const(0.7), Expr::Acc(t_bi)),
                    Expr::mul(Expr::Const(0.7), Expr::Acc(t_br)),
                ),
            ),
            Stmt::Store(
                ArrayRef(2),
                Index::Elem(0),
                Expr::sub(Expr::Acc(t_ar), Expr::Acc(t_tr)),
            ),
            Stmt::Store(
                ArrayRef(3),
                Index::Elem(0),
                Expr::sub(Expr::Acc(t_ai), Expr::Acc(t_ti)),
            ),
            Stmt::Store(
                ArrayRef(0),
                Index::Elem(0),
                Expr::add(Expr::Acc(t_ar), Expr::Acc(t_tr)),
            ),
            Stmt::Store(
                ArrayRef(1),
                Index::Elem(0),
                Expr::add(Expr::Acc(t_ai), Expr::Acc(t_ti)),
            ),
        ],
    )
    .with_accumulators(6)
}

/// One dense mat-vec row chunk `y[i] += A[k]·x[k]` over 4 columns
/// (`MG3D`-flavoured: long load streams with a shallow reduction).
#[must_use]
pub fn matvec_row() -> Kernel {
    let prod = |k: i64| Expr::mul(ld(0, k), ld(1, k));
    Kernel::new(
        "matvec_row",
        vec!["arow", "x", "y"],
        vec![Stmt::Store(
            ArrayRef(2),
            Index::Elem(0),
            Expr::add(Expr::add(prod(0), prod(1)), Expr::add(prod(2), prod(3))),
        )],
    )
    .with_stride(4)
}

/// Indirect gather `y[i] = x[idx[i]]·s[i]` (`BDNA`-flavoured): the
/// unknown subscript defeats disambiguation within `x`, modelling the
/// pointer-chasing accesses that limit code motion.
#[must_use]
pub fn gather() -> Kernel {
    Kernel::new(
        "gather",
        vec!["x", "s", "y"],
        vec![Stmt::Store(
            ArrayRef(2),
            Index::Elem(0),
            Expr::mul(Expr::Load(ArrayRef(0), Index::Unknown), ld(1, 0)),
        )],
    )
}

/// Strided copy from a matrix column into a row (`transpose`-flavoured):
/// loads stride by a full matrix row (64 elements), so under an
/// address-tracking cache every access opens a new line — the
/// low-spatial-locality counterpart to [`daxpy`].
#[must_use]
pub fn transpose_col() -> Kernel {
    Kernel::new(
        "transpose_col",
        vec!["src", "dst"],
        vec![Stmt::Store(ArrayRef(1), Index::Elem(0), ld(0, 0))],
    )
    // Read a[i·64], write b[i]: model by striding the read array and
    // keeping unit stride on the write via stride 64 on the whole
    // iteration (the store's element index also moves by 64, which only
    // spreads the writes — what matters is the strided read pattern).
    .with_stride(64)
}

/// Histogram update `h[idx[i]] += w[i]` — an **indirect store**: neither
/// the load of the old bin value nor the store of the new one can be
/// disambiguated, serialising all histogram traffic (the worst case for
/// any scheduler, included to bound behaviour).
#[must_use]
pub fn histogram() -> Kernel {
    Kernel::new(
        "histogram",
        vec!["h", "w"],
        vec![Stmt::Store(
            ArrayRef(0),
            Index::Unknown,
            Expr::add(Expr::Load(ArrayRef(0), Index::Unknown), ld(1, 0)),
        )],
    )
}

/// All library kernels with their names, for exhaustive tests.
#[must_use]
pub fn all_kernels() -> Vec<Kernel> {
    vec![
        daxpy(),
        dot(),
        stencil3(),
        stencil5(),
        md_force(),
        recurrence(),
        fft_butterfly(),
        matvec_row(),
        gather(),
        transpose_col(),
        histogram(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_kernel;
    use bsched_dag::{build_dag, AliasModel};

    #[test]
    fn kernels_have_expected_load_counts() {
        assert_eq!(daxpy().loads_per_iteration(), 2);
        assert_eq!(dot().loads_per_iteration(), 2);
        assert_eq!(stencil3().loads_per_iteration(), 3);
        assert_eq!(stencil5().loads_per_iteration(), 5);
        assert_eq!(md_force().loads_per_iteration(), 6, "six position loads");
        assert_eq!(recurrence().loads_per_iteration(), 2);
        assert_eq!(fft_butterfly().loads_per_iteration(), 4);
        assert_eq!(matvec_row().loads_per_iteration(), 8);
        assert_eq!(gather().loads_per_iteration(), 2);
        assert_eq!(transpose_col().loads_per_iteration(), 1);
        assert_eq!(histogram().loads_per_iteration(), 2);
    }

    #[test]
    fn histogram_serialises_bin_traffic() {
        use bsched_dag::{build_dag, AliasModel, DepKind};
        // Unknown-offset read-modify-write of the same array: every
        // unrolled copy's store must be ordered against the next copy's
        // load and store.
        let block = lower_kernel(&histogram().with_unroll(3), 1.0);
        let dag = build_dag(&block, AliasModel::Fortran);
        let mem_edges = dag.edges().filter(|e| e.kind == DepKind::Memory).count();
        assert!(
            mem_edges >= 3,
            "indirect bins must be chained, got {mem_edges} edges"
        );
    }

    #[test]
    fn transpose_misses_where_daxpy_hits() {
        use bsched_cpusim::{simulate_block, ProcessorModel};
        use bsched_memsim::LineCache;
        use bsched_stats::Pcg32;
        // Unit-stride daxpy enjoys line hits; 64-element strides never do.
        let unit = lower_kernel(&daxpy().with_unroll(8), 1.0);
        let strided = lower_kernel(&transpose_col().with_unroll(8), 1.0);
        let run = |block: &bsched_ir::BasicBlock| {
            let cache = LineCache::new(32, 64, 2, 2, 12);
            let mut rng = Pcg32::seed_from_u64(0);
            let r = simulate_block(block, &cache, ProcessorModel::Unlimited, &mut rng);
            r.interlocks as f64 / r.instructions as f64
        };
        assert!(
            run(&strided) > run(&unit),
            "strided access should stall more per instruction under a line cache"
        );
    }

    #[test]
    fn every_kernel_lowers_and_builds_a_dag() {
        for kernel in all_kernels() {
            for unroll in [1, 4] {
                let k = kernel.clone().with_unroll(unroll);
                let block = lower_kernel(&k, 1.0);
                assert!(!block.is_empty(), "{}", k.name);
                let dag = build_dag(&block, AliasModel::Fortran);
                assert_eq!(dag.len(), block.len());
                // Every DAG stays acyclic (forward edges only) and has at
                // least the kernel's loads.
                assert!(dag.load_ids().len() >= k.loads_per_iteration());
            }
        }
    }

    #[test]
    fn unrolling_scales_block_size_linearly() {
        let k1 = lower_kernel(&daxpy(), 1.0).len();
        let k4 = lower_kernel(&daxpy().with_unroll(4), 1.0).len();
        // Array bases are shared; everything else replicates.
        assert_eq!(k4 - 2, (k1 - 2) * 4);
    }

    #[test]
    fn recurrence_has_little_parallelism() {
        use bsched_core::{BalancedWeights, WeightAssigner};
        let serial = lower_kernel(&recurrence().with_unroll(4), 1.0);
        let dag = build_dag(&serial, AliasModel::Fortran);
        let w = BalancedWeights::new().assign(&dag);
        let max_load_weight = dag.load_ids().iter().map(|&l| w.weight(l)).max().unwrap();
        let parallel = lower_kernel(&md_force(), 1.0);
        let pdag = build_dag(&parallel, AliasModel::Fortran);
        let pw = BalancedWeights::new().assign(&pdag);
        let md_max = pdag.load_ids().iter().map(|&l| pw.weight(l)).max().unwrap();
        assert!(
            md_max > max_load_weight,
            "md_force ({md_max:?}) should expose more LLP than recurrence ({max_load_weight:?})"
        );
    }
}
