//! A tiny numeric-kernel language.
//!
//! The paper's workload is the Perfect Club suite — Fortran numeric codes
//! whose hot basic blocks are unrolled array loops. This module models
//! exactly that shape: a [`Kernel`] is a set of array declarations plus a
//! straight-line body of array assignments over FP expressions, optionally
//! unrolled (the paper unrolled loops manually, §4.1). Lowering to IR
//! lives in [`crate::lower`].

/// Binary floating-point operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

/// A reference to a declared array by position in [`Kernel::arrays`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayRef(pub usize);

/// An array subscript within the current (unrolled) iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Index {
    /// A known element offset relative to the iteration's base element
    /// (e.g. `a[i+2]` is `Elem(2)`); unrolled copies shift it by the
    /// kernel's stride.
    Elem(i64),
    /// A data-dependent subscript (e.g. `x[idx[i]]`): the compiler cannot
    /// disambiguate it against any other access to the same array.
    Unknown,
}

/// A floating-point expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Load an array element.
    Load(ArrayRef, Index),
    /// A literal constant.
    Const(f64),
    /// A loop-carried scalar (e.g. a running sum); reads the value the
    /// previous statement/iteration wrote with [`Stmt::SetAcc`].
    Acc(usize),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for binary nodes.
    #[must_use]
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// `a + b`.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // static constructors, not operators
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Add, a, b)
    }

    /// `a - b`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Sub, a, b)
    }

    /// `a * b`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Mul, a, b)
    }

    /// `a / b`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn div(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Div, a, b)
    }

    /// Number of loads in the expression tree.
    #[must_use]
    pub fn load_count(&self) -> usize {
        match self {
            Expr::Load(..) => 1,
            Expr::Const(_) | Expr::Acc(_) => 0,
            Expr::Bin(_, a, b) => a.load_count() + b.load_count(),
            Expr::Neg(a) => a.load_count(),
        }
    }
}

/// One statement of a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `array[index] = expr` — evaluates and stores.
    Store(ArrayRef, Index, Expr),
    /// `acc_k = expr` — updates a loop-carried scalar accumulator,
    /// creating a serial dependence across unrolled iterations (dot
    /// products, recurrences).
    SetAcc(usize, Expr),
}

/// A declared array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Display name (`x`, `y`, `force`, …).
    pub name: String,
}

/// A numeric kernel: the body describes *one* loop iteration; lowering
/// replicates it `unroll` times, shifting every [`Index::Elem`] by
/// `stride` elements per copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel name, used for block naming.
    pub name: String,
    /// Declared arrays; each becomes its own memory region (Fortran
    /// semantics — the paper's Fig. 8 transformation).
    pub arrays: Vec<ArrayDecl>,
    /// Number of loop-carried scalar accumulators.
    pub accumulators: usize,
    /// One iteration's statements.
    pub body: Vec<Stmt>,
    /// Elements each iteration advances by.
    pub stride: i64,
    /// Unroll factor (≥ 1).
    pub unroll: u32,
}

impl Kernel {
    /// Creates a kernel with the given arrays and body, stride 1 and no
    /// unrolling.
    #[must_use]
    pub fn new(name: impl Into<String>, arrays: Vec<&str>, body: Vec<Stmt>) -> Self {
        Self {
            name: name.into(),
            arrays: arrays
                .into_iter()
                .map(|n| ArrayDecl { name: n.to_owned() })
                .collect(),
            accumulators: 0,
            body,
            stride: 1,
            unroll: 1,
        }
    }

    /// Sets the unroll factor (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `unroll` is zero.
    #[must_use]
    pub fn with_unroll(mut self, unroll: u32) -> Self {
        assert!(unroll >= 1, "unroll factor must be at least 1");
        self.unroll = unroll;
        self
    }

    /// Sets the per-iteration element stride (builder-style).
    #[must_use]
    pub fn with_stride(mut self, stride: i64) -> Self {
        self.stride = stride;
        self
    }

    /// Declares `n` loop-carried accumulators (builder-style).
    #[must_use]
    pub fn with_accumulators(mut self, n: usize) -> Self {
        self.accumulators = n;
        self
    }

    /// Loads per iteration of the body.
    #[must_use]
    pub fn loads_per_iteration(&self) -> usize {
        self.body
            .iter()
            .map(|s| match s {
                Stmt::Store(_, _, e) | Stmt::SetAcc(_, e) => e.load_count(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> ArrayRef {
        ArrayRef(0)
    }

    #[test]
    fn expr_builders_and_load_count() {
        let e = Expr::add(
            Expr::mul(Expr::Const(2.0), Expr::Load(x(), Index::Elem(0))),
            Expr::Load(x(), Index::Elem(1)),
        );
        assert_eq!(e.load_count(), 2);
        assert_eq!(Expr::Neg(Box::new(e.clone())).load_count(), 2);
        assert_eq!(Expr::Acc(0).load_count(), 0);
    }

    #[test]
    fn kernel_counts_loads() {
        let k = Kernel::new(
            "daxpy",
            vec!["x", "y"],
            vec![Stmt::Store(
                ArrayRef(1),
                Index::Elem(0),
                Expr::add(
                    Expr::mul(Expr::Const(3.0), Expr::Load(ArrayRef(0), Index::Elem(0))),
                    Expr::Load(ArrayRef(1), Index::Elem(0)),
                ),
            )],
        );
        assert_eq!(k.loads_per_iteration(), 2);
        assert_eq!(k.unroll, 1);
        assert_eq!(k.stride, 1);
    }

    #[test]
    fn builder_methods() {
        let k = Kernel::new("k", vec!["a"], vec![])
            .with_unroll(8)
            .with_stride(2)
            .with_accumulators(1);
        assert_eq!(k.unroll, 8);
        assert_eq!(k.stride, 2);
        assert_eq!(k.accumulators, 1);
    }

    #[test]
    #[should_panic(expected = "unroll factor must be at least 1")]
    fn zero_unroll_panics() {
        let _ = Kernel::new("k", vec![], vec![]).with_unroll(0);
    }
}
