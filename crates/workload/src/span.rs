//! Source positions threaded from kernel text to IR instructions.
//!
//! The parser records where every statement (and every kernel header)
//! starts; lowering propagates those positions onto the instructions it
//! emits. Downstream diagnostics — the `bsched-analyze` lints — use the
//! resulting [`SourceMap`] to point at the offending kernel source line
//! instead of at an anonymous instruction id.

use std::fmt;

use bsched_ir::InstId;

/// A 1-based line/column position in kernel source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

impl Span {
    /// Creates a span at `line:column` (both 1-based).
    #[must_use]
    pub const fn new(line: u32, column: u32) -> Self {
        Self { line, column }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Maps each instruction of one lowered basic block back to the kernel
/// source statement it came from.
///
/// Prelude instructions the lowering invents (array-base materialisation,
/// accumulator initialisation) have no source statement and map to
/// `None`; every instruction emitted while lowering statement *k* maps to
/// that statement's span, across all unrolled copies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceMap {
    spans: Vec<Option<Span>>,
}

impl SourceMap {
    /// Wraps a per-instruction span vector (one entry per instruction of
    /// the lowered block, in program order).
    #[must_use]
    pub fn new(spans: Vec<Option<Span>>) -> Self {
        Self { spans }
    }

    /// The source span of instruction `id`, if it came from a statement.
    #[must_use]
    pub fn get(&self, id: InstId) -> Option<Span> {
        self.spans.get(id.index()).copied().flatten()
    }

    /// Number of instructions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the map covers no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_displays_line_colon_column() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
    }

    #[test]
    fn source_map_lookup() {
        let map = SourceMap::new(vec![None, Some(Span::new(2, 5)), None]);
        assert_eq!(map.len(), 3);
        assert!(!map.is_empty());
        assert_eq!(map.get(InstId::new(0)), None);
        assert_eq!(map.get(InstId::new(1)), Some(Span::new(2, 5)));
        assert_eq!(map.get(InstId::new(7)), None, "out of range is None");
        assert!(SourceMap::default().is_empty());
    }
}
