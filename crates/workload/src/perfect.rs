//! Synthetic stand-ins for the Perfect Club benchmarks (§4.2).
//!
//! We cannot run the original Fortran suite, so each benchmark is
//! replaced by a [`Function`] assembled from library kernels whose block
//! sizes, load densities, load-level parallelism and register pressure
//! are dialled to the qualitative profile the paper reports for that
//! program:
//!
//! | Stand-in | Profile targeted |
//! |---|---|
//! | `ADM`    | medium blocks, moderate LLP (mid-table improvements) |
//! | `ARC2D`  | wide stencils, high register pressure (spill-sensitive; loses at latency 30, Table 5) |
//! | `BDNA`   | indirect accesses limiting disambiguation, high spill rate |
//! | `FLO52Q` | transonic-flow mix of stencils and butterflies, modest wins |
//! | `MDG`    | molecular dynamics: abundant LLP, the paper's best case (Table 3) |
//! | `MG3D`   | very large streaming blocks, seismic migration |
//! | `QCD2`   | small, pressure-heavy blocks with the highest spill percentage |
//! | `TRACK`  | small serial blocks: least LLP, smallest (sometimes negative) wins |
//!
//! The absolute instruction counts are arbitrary; what matters for
//! reproducing the paper's *shape* is the relative mix of serial and
//! parallel loads per block.

use bsched_ir::Function;

use crate::kernel::Kernel;
use crate::kernels;
use crate::lower::lower_kernel;

/// A named benchmark stand-in.
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: String,
    function: Function,
}

impl Benchmark {
    /// Wraps an arbitrary function as a named benchmark. The robustness
    /// tests use this to inject deliberately broken programs into the
    /// table harness; the Perfect Club stand-ins below use it too.
    #[must_use]
    pub fn new(name: impl Into<String>, function: Function) -> Self {
        Self {
            name: name.into(),
            function,
        }
    }

    /// The benchmark's Perfect Club name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The benchmark's code.
    #[must_use]
    pub fn function(&self) -> &Function {
        &self.function
    }
}

fn assemble(name: &'static str, pieces: Vec<(Kernel, u32, f64)>) -> Benchmark {
    let blocks = pieces
        .into_iter()
        .enumerate()
        .map(|(i, (kernel, unroll, freq))| {
            let mut k = kernel.with_unroll(unroll);
            k.name = format!("{name}.b{i}.{}", k.name);
            lower_kernel(&k, freq)
        })
        .collect();
    Benchmark::new(name, Function::new(name, blocks))
}

/// ADM: pseudospectral air-pollution model — medium blocks, moderate LLP.
#[must_use]
pub fn adm() -> Benchmark {
    assemble(
        "ADM",
        vec![
            (kernels::daxpy(), 3, 900.0),
            (kernels::stencil3(), 2, 700.0),
            (kernels::dot(), 4, 500.0),
            (kernels::matvec_row(), 1, 300.0),
        ],
    )
}

/// ARC2D: implicit-CFD 2-D stencils — wide blocks, high register pressure.
#[must_use]
pub fn arc2d() -> Benchmark {
    assemble(
        "ARC2D",
        vec![
            (kernels::stencil5(), 3, 1200.0),
            (kernels::stencil5(), 2, 800.0),
            (kernels::stencil3(), 4, 600.0),
            (kernels::daxpy(), 4, 400.0),
        ],
    )
}

/// BDNA: molecular dynamics of DNA — indirect accesses plus force loops.
#[must_use]
pub fn bdna() -> Benchmark {
    assemble(
        "BDNA",
        vec![
            (kernels::gather(), 4, 800.0),
            (kernels::md_force(), 1, 600.0),
            (kernels::dot(), 5, 400.0),
            (kernels::gather(), 3, 300.0),
        ],
    )
}

/// FLO52Q: transonic-flow solver — stencils and butterflies.
#[must_use]
pub fn flo52q() -> Benchmark {
    assemble(
        "FLO52Q",
        vec![
            (kernels::stencil3(), 3, 1000.0),
            (kernels::fft_butterfly(), 1, 500.0),
            (kernels::daxpy(), 3, 500.0),
            (kernels::recurrence(), 4, 200.0),
        ],
    )
}

/// MDG: liquid-water molecular dynamics — the paper's showcase benchmark
/// (Table 3): big blocks full of independent position loads.
#[must_use]
pub fn mdg() -> Benchmark {
    assemble(
        "MDG",
        vec![
            (kernels::md_force(), 1, 1400.0),
            (kernels::md_force(), 1, 800.0),
            (kernels::dot(), 6, 400.0),
            (kernels::daxpy(), 3, 300.0),
        ],
    )
}

/// MG3D: depth-migration seismic code — the suite's largest program,
/// long streaming loops.
#[must_use]
pub fn mg3d() -> Benchmark {
    assemble(
        "MG3D",
        vec![
            (kernels::matvec_row(), 1, 1600.0),
            (kernels::daxpy(), 5, 1200.0),
            (kernels::stencil3(), 3, 900.0),
            (kernels::dot(), 8, 500.0),
        ],
    )
}

/// QCD2: lattice gauge theory — small pressure-heavy complex arithmetic;
/// the highest spill percentages in Table 4.
#[must_use]
pub fn qcd2() -> Benchmark {
    assemble(
        "QCD2",
        vec![
            (kernels::fft_butterfly(), 2, 900.0),
            (kernels::fft_butterfly(), 2, 700.0),
            (kernels::md_force(), 1, 300.0),
            (kernels::fft_butterfly(), 3, 200.0),
        ],
    )
}

/// TRACK: missile tracking — small blocks, serial chains, little LLP.
#[must_use]
pub fn track() -> Benchmark {
    assemble(
        "TRACK",
        vec![
            (kernels::recurrence(), 2, 700.0),
            (kernels::daxpy(), 1, 400.0),
            (kernels::dot(), 2, 300.0),
            (kernels::gather(), 1, 200.0),
        ],
    )
}

/// The full eight-benchmark workload, in the paper's table order.
#[must_use]
pub fn perfect_club() -> Vec<Benchmark> {
    vec![
        adm(),
        arc2d(),
        bdna(),
        flo52q(),
        mdg(),
        mg3d(),
        qcd2(),
        track(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_dag::{build_dag, AliasModel};
    use bsched_ir::BasicBlock;

    #[test]
    fn eight_benchmarks_in_table_order() {
        let suite = perfect_club();
        let names: Vec<&str> = suite.iter().map(Benchmark::name).collect();
        assert_eq!(
            names,
            vec!["ADM", "ARC2D", "BDNA", "FLO52Q", "MDG", "MG3D", "QCD2", "TRACK"]
        );
    }

    #[test]
    fn benchmarks_are_deterministic() {
        let a = mdg();
        let b = mdg();
        assert_eq!(a.function(), b.function());
    }

    #[test]
    fn every_block_builds_a_dag() {
        for bench in perfect_club() {
            for block in bench.function().blocks() {
                assert!(!block.is_empty(), "{}", block.name());
                assert!(block.frequency() > 0.0);
                let dag = build_dag(block, AliasModel::Fortran);
                assert_eq!(dag.len(), block.len());
                assert!(!dag.load_ids().is_empty(), "{} has loads", block.name());
            }
        }
    }

    #[test]
    fn profiles_differ_as_intended() {
        // TRACK's blocks are small; MG3D's are large.
        let track_max = track()
            .function()
            .blocks()
            .iter()
            .map(BasicBlock::len)
            .max()
            .unwrap();
        let mg3d_max = mg3d()
            .function()
            .blocks()
            .iter()
            .map(BasicBlock::len)
            .max()
            .unwrap();
        assert!(mg3d_max > 2 * track_max, "{mg3d_max} vs {track_max}");
    }

    #[test]
    fn block_names_are_qualified() {
        let bench = adm();
        assert!(bench.function().blocks()[0].name().starts_with("ADM.b0."));
    }
}
