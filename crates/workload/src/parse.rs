//! A text format for kernels, so experiments can be driven from files.
//!
//! The grammar mirrors the in-memory [`Kernel`]
//! one-to-one:
//!
//! ```text
//! kernel daxpy {
//!     arrays x, y;
//!     unroll 4;            // optional, default 1
//!     stride 1;            // optional, default 1
//!     frequency 1000;      // optional, default 1
//!     acc s;               // loop-carried scalars, optional
//!
//!     y[0] = 3.0 * x[0] + y[0];
//!     s    = s + x[0] * y[0];
//! }
//! ```
//!
//! Array subscripts are element offsets relative to the current
//! iteration (`x[-1]`, `x[0]`, `x[1]`, shifted by `stride` per unrolled
//! copy) or `?` for a data-dependent subscript the compiler cannot
//! disambiguate. `//` comments run to end of line. Expressions support
//! `+ - * /`, unary minus, parentheses, numeric literals, array loads
//! and accumulator reads with ordinary precedence.

use std::fmt;

use crate::kernel::{ArrayRef, BinOp, Expr, Index, Kernel, Stmt};
use crate::span::Span;

/// A parse error with 1-based line/column location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub column: u32,
}

impl ParseError {
    fn new(message: impl Into<String>, pos: Pos) -> Self {
        Self {
            message: message.into(),
            line: pos.line,
            column: pos.column,
        }
    }

    /// The error message without location.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pos {
    line: u32,
    column: u32,
}

impl Pos {
    fn span(self) -> Span {
        Span::new(self.line, self.column)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    Punct(char),
    Question,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier {s:?}"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "number {v}"),
            Tok::Punct(c) => write!(f, "{c:?}"),
            Tok::Question => write!(f, "'?'"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    at: usize,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src: src.as_bytes(),
            at: 0,
            line: 1,
            column: 1,
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.at += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.at + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn next_token(&mut self) -> Result<(Tok, Pos), ParseError> {
        self.skip_trivia();
        let pos = Pos {
            line: self.line,
            column: self.column,
        };
        let Some(b) = self.peek_byte() else {
            return Ok((Tok::Eof, pos));
        };
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = self.at;
            while matches!(self.peek_byte(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.at]).expect("ascii");
            return Ok((Tok::Ident(text.to_owned()), pos));
        }
        if b.is_ascii_digit() {
            let start = self.at;
            let mut is_float = false;
            while let Some(c) = self.peek_byte() {
                if c.is_ascii_digit() {
                    self.bump();
                } else if c == b'.'
                    && !is_float
                    && matches!(self.src.get(self.at + 1), Some(d) if d.is_ascii_digit())
                {
                    is_float = true;
                    self.bump();
                } else {
                    break;
                }
            }
            let text = std::str::from_utf8(&self.src[start..self.at]).expect("ascii");
            return if is_float {
                text.parse::<f64>()
                    .map(|v| (Tok::Float(v), pos))
                    .map_err(|_| ParseError::new(format!("invalid number {text:?}"), pos))
            } else {
                text.parse::<i64>()
                    .map(|v| (Tok::Int(v), pos))
                    .map_err(|_| ParseError::new(format!("integer out of range {text:?}"), pos))
            };
        }
        self.bump();
        match b {
            b'?' => Ok((Tok::Question, pos)),
            b'{' | b'}' | b'[' | b']' | b'(' | b')' | b';' | b',' | b'=' | b'+' | b'-' | b'*'
            | b'/' => Ok((Tok::Punct(b as char), pos)),
            other => Err(ParseError::new(
                format!("unexpected character {:?}", other as char),
                pos,
            )),
        }
    }
}

struct Parser {
    tokens: Vec<(Tok, Pos)>,
    at: usize,
    arrays: Vec<String>,
    accs: Vec<String>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.at].0
    }

    fn pos(&self) -> Pos {
        self.tokens[self.at].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.at].0.clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        if *self.peek() == Tok::Punct(c) {
            self.bump();
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {c:?}, found {}", self.peek()),
                self.pos(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        if let Tok::Ident(name) = self.peek().clone() {
            self.bump();
            Ok(name)
        } else {
            Err(ParseError::new(
                format!("expected identifier, found {}", self.peek()),
                self.pos(),
            ))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let pos = self.pos();
        let name = self.expect_ident()?;
        if name == kw {
            Ok(())
        } else {
            Err(ParseError::new(
                format!("expected {kw:?}, found {name:?}"),
                pos,
            ))
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match *self.peek() {
            Tok::Int(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(ParseError::new(
                format!("expected integer, found {}", self.peek()),
                self.pos(),
            )),
        }
    }

    fn array_ref(&self, name: &str, pos: Pos) -> Result<ArrayRef, ParseError> {
        self.arrays
            .iter()
            .position(|a| a == name)
            .map(ArrayRef)
            .ok_or_else(|| ParseError::new(format!("unknown array {name:?}"), pos))
    }

    fn acc_ref(&self, name: &str, pos: Pos) -> Result<usize, ParseError> {
        self.accs
            .iter()
            .position(|a| a == name)
            .ok_or_else(|| ParseError::new(format!("unknown accumulator {name:?}"), pos))
    }

    fn index(&mut self) -> Result<Index, ParseError> {
        self.expect_punct('[')?;
        let idx = if *self.peek() == Tok::Question {
            self.bump();
            Index::Unknown
        } else {
            let negative = if *self.peek() == Tok::Punct('-') {
                self.bump();
                true
            } else {
                false
            };
            let v = self.expect_int()?;
            Index::Elem(if negative { -v } else { v })
        };
        self.expect_punct(']')?;
        Ok(idx)
    }

    // expr := term (('+'|'-') term)*
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Punct('+') => BinOp::Add,
                Tok::Punct('-') => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    // term := factor (('*'|'/') factor)*
    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Tok::Punct('*') => BinOp::Mul,
                Tok::Punct('/') => BinOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.factor()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().clone() {
            Tok::Punct('-') => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.factor()?)))
            }
            Tok::Punct('(') => {
                self.bump();
                let inner = self.expr()?;
                self.expect_punct(')')?;
                Ok(inner)
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Const(v as f64))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::Punct('[') {
                    let arr = self.array_ref(&name, pos)?;
                    let idx = self.index()?;
                    Ok(Expr::Load(arr, idx))
                } else {
                    Ok(Expr::Acc(self.acc_ref(&name, pos)?))
                }
            }
            other => Err(ParseError::new(
                format!("expected expression, found {other}"),
                pos,
            )),
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        let name = self.expect_ident()?;
        let stmt = if *self.peek() == Tok::Punct('[') {
            let arr = self.array_ref(&name, pos)?;
            let idx = self.index()?;
            self.expect_punct('=')?;
            Stmt::Store(arr, idx, self.expr()?)
        } else {
            let acc = self.acc_ref(&name, pos)?;
            self.expect_punct('=')?;
            Stmt::SetAcc(acc, self.expr()?)
        };
        self.expect_punct(';')?;
        Ok(stmt)
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = vec![self.expect_ident()?];
        while *self.peek() == Tok::Punct(',') {
            self.bump();
            names.push(self.expect_ident()?);
        }
        self.expect_punct(';')?;
        Ok(names)
    }
}

/// A parsed kernel plus its profiled block frequency and source spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedKernel {
    /// The kernel.
    pub kernel: Kernel,
    /// Execution frequency (`frequency` declaration, default 1.0).
    pub frequency: f64,
    /// Where the `kernel` keyword of this definition starts.
    pub span: Span,
    /// Where each body statement starts, aligned with `kernel.body`.
    pub stmt_spans: Vec<Span>,
}

/// Parses one kernel definition.
///
/// # Errors
///
/// Returns a located [`ParseError`] on malformed input, unknown array or
/// accumulator names, duplicate declarations, or trailing garbage.
pub fn parse_kernel(src: &str) -> Result<ParsedKernel, ParseError> {
    let kernels = parse_program(src)?;
    match <[ParsedKernel; 1]>::try_from(kernels) {
        Ok([kernel]) => Ok(kernel),
        Err(kernels) => Err(ParseError {
            message: format!("expected exactly one kernel, found {}", kernels.len()),
            line: 1,
            column: 1,
        }),
    }
}

/// Parses a whole program: one or more kernel definitions, each becoming
/// one basic block of the eventual [`Function`](bsched_ir::Function).
///
/// # Errors
///
/// Returns a located [`ParseError`]; an input with no kernels is an error.
pub fn parse_program(src: &str) -> Result<Vec<ParsedKernel>, ParseError> {
    if bsched_faults::fault_point!(bsched_faults::Site::Parse).is_some() {
        return Err(ParseError::new(
            "injected fault: parser rejected the input",
            Pos { line: 1, column: 1 },
        ));
    }
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    loop {
        let (tok, pos) = lexer.next_token()?;
        let done = tok == Tok::Eof;
        tokens.push((tok, pos));
        if done {
            break;
        }
    }
    let mut p = Parser {
        tokens,
        at: 0,
        arrays: Vec::new(),
        accs: Vec::new(),
    };
    let mut kernels = Vec::new();
    while *p.peek() != Tok::Eof {
        kernels.push(parse_one(&mut p)?);
    }
    if kernels.is_empty() {
        return Err(ParseError::new(
            "input contains no kernel definitions",
            p.pos(),
        ));
    }
    Ok(kernels)
}

fn parse_one(p: &mut Parser) -> Result<ParsedKernel, ParseError> {
    p.arrays.clear();
    p.accs.clear();
    let header = p.pos().span();
    p.expect_keyword("kernel")?;
    let name = p.expect_ident()?;
    p.expect_punct('{')?;

    let mut unroll: u32 = 1;
    let mut stride: i64 = 1;
    let mut frequency: f64 = 1.0;
    let mut body = Vec::new();
    let mut stmt_spans = Vec::new();

    while *p.peek() != Tok::Punct('}') {
        let pos = p.pos();
        match p.peek().clone() {
            Tok::Ident(kw) if kw == "arrays" => {
                p.bump();
                for a in p.ident_list()? {
                    if p.arrays.contains(&a) {
                        return Err(ParseError::new(format!("duplicate array {a:?}"), pos));
                    }
                    p.arrays.push(a);
                }
            }
            Tok::Ident(kw) if kw == "acc" => {
                p.bump();
                for a in p.ident_list()? {
                    if p.accs.contains(&a) {
                        return Err(ParseError::new(format!("duplicate accumulator {a:?}"), pos));
                    }
                    p.accs.push(a);
                }
            }
            Tok::Ident(kw) if kw == "unroll" => {
                p.bump();
                let v = p.expect_int()?;
                p.expect_punct(';')?;
                if v < 1 {
                    return Err(ParseError::new("unroll must be at least 1", pos));
                }
                unroll = v as u32;
            }
            Tok::Ident(kw) if kw == "stride" => {
                p.bump();
                stride = p.expect_int()?;
                p.expect_punct(';')?;
            }
            Tok::Ident(kw) if kw == "frequency" => {
                p.bump();
                let v = match *p.peek() {
                    Tok::Int(v) => v as f64,
                    Tok::Float(v) => v,
                    _ => {
                        return Err(ParseError::new(
                            format!("expected number, found {}", p.peek()),
                            p.pos(),
                        ))
                    }
                };
                p.bump();
                p.expect_punct(';')?;
                if v <= 0.0 {
                    return Err(ParseError::new("frequency must be positive", pos));
                }
                frequency = v;
            }
            Tok::Eof => {
                return Err(ParseError::new(
                    "unexpected end of input (missing '}')",
                    pos,
                ));
            }
            _ => {
                stmt_spans.push(pos.span());
                body.push(p.stmt()?);
            }
        }
    }
    p.expect_punct('}')?;

    let arrays: Vec<&str> = p.arrays.iter().map(String::as_str).collect();
    let accs = p.accs.len();
    let kernel = Kernel::new(name, arrays, body)
        .with_unroll(unroll)
        .with_stride(stride)
        .with_accumulators(accs);
    Ok(ParsedKernel {
        kernel,
        frequency,
        span: header,
        stmt_spans,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::lower::lower_kernel;

    const DAXPY: &str = r"
        kernel daxpy {
            arrays x, y;       // two streams
            unroll 4;
            frequency 1000;
            y[0] = 3.0 * x[0] + y[0];
        }
    ";

    #[test]
    fn parses_daxpy_equivalent_to_library_kernel() {
        let parsed = parse_kernel(DAXPY).unwrap();
        assert_eq!(parsed.frequency, 1000.0);
        let library = kernels::daxpy().with_unroll(4);
        // Same block structure after lowering.
        let a = lower_kernel(&parsed.kernel, 1.0);
        let b = lower_kernel(&library, 1.0);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.load_ids().len(), b.load_ids().len());
    }

    #[test]
    fn parses_accumulators_and_unknown_indices() {
        let src = r"
            kernel gather_dot {
                arrays x, idx, y;
                acc s;
                stride 2;
                s = s + x[?] * y[1];
                y[-1] = s;
            }
        ";
        let k = parse_kernel(src).unwrap().kernel;
        assert_eq!(k.accumulators, 1);
        assert_eq!(k.stride, 2);
        assert_eq!(k.body.len(), 2);
        assert_eq!(k.loads_per_iteration(), 2);
        match &k.body[0] {
            Stmt::SetAcc(0, expr) => assert_eq!(expr.load_count(), 2),
            other => panic!("unexpected {other:?}"),
        }
        match &k.body[1] {
            Stmt::Store(ArrayRef(2), Index::Elem(-1), _) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_and_parentheses() {
        let src = r"
            kernel p {
                arrays a;
                a[0] = 1 + 2 * 3;
                a[1] = (1 + 2) * 3;
                a[2] = -a[0] / 2;
            }
        ";
        let k = parse_kernel(src).unwrap().kernel;
        match &k.body[0] {
            Stmt::Store(_, _, Expr::Bin(BinOp::Add, _, rhs)) => {
                assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
            }
            other => panic!("precedence broken: {other:?}"),
        }
        match &k.body[1] {
            Stmt::Store(_, _, Expr::Bin(BinOp::Mul, lhs, _)) => {
                assert!(matches!(**lhs, Expr::Bin(BinOp::Add, _, _)));
            }
            other => panic!("parens broken: {other:?}"),
        }
        match &k.body[2] {
            Stmt::Store(_, _, Expr::Bin(BinOp::Div, lhs, _)) => {
                assert!(matches!(**lhs, Expr::Neg(_)));
            }
            other => panic!("unary minus broken: {other:?}"),
        }
    }

    #[test]
    fn error_locations_are_reported() {
        let err = parse_kernel("kernel k {\n  arrays a;\n  b[0] = 1;\n}").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message().contains("unknown array"));

        let err = parse_kernel("kernel k { arrays a; a[0] = ; }").unwrap_err();
        assert!(err.message().contains("expected expression"));
    }

    #[test]
    fn rejects_duplicates_and_bad_directives() {
        assert!(parse_kernel("kernel k { arrays a, a; }")
            .unwrap_err()
            .message()
            .contains("duplicate"));
        assert!(parse_kernel("kernel k { unroll 0; }")
            .unwrap_err()
            .message()
            .contains("at least 1"));
        assert!(parse_kernel("kernel k { frequency 0; }")
            .unwrap_err()
            .message()
            .contains("positive"));
    }

    #[test]
    fn rejects_trailing_garbage_and_unclosed() {
        assert!(parse_kernel("kernel k { } extra")
            .unwrap_err()
            .message()
            .contains("expected \"kernel\""));
        assert!(parse_kernel("kernel k { arrays a;")
            .unwrap_err()
            .message()
            .contains("end of input"));
        assert!(
            parse_kernel("kernel k { arrays a; a[0] = 1 }").is_err(),
            "missing semicolon"
        );
    }

    #[test]
    fn parses_multi_kernel_programs() {
        let src = r"
            kernel a { arrays x; frequency 10; x[0] = 1; }
            kernel b { arrays y; acc s; s = s + y[0]; }
        ";
        let kernels = parse_program(src).unwrap();
        assert_eq!(kernels.len(), 2);
        assert_eq!(kernels[0].kernel.name, "a");
        assert_eq!(kernels[0].frequency, 10.0);
        assert_eq!(kernels[1].kernel.name, "b");
        assert_eq!(kernels[1].kernel.accumulators, 1);
        // Name scopes reset between kernels.
        assert_eq!(kernels[1].kernel.arrays.len(), 1);
        // parse_kernel rejects multi-kernel input.
        assert!(parse_kernel(src)
            .unwrap_err()
            .message()
            .contains("exactly one"));
        // Empty programs are rejected.
        assert!(parse_program("  // nothing\n")
            .unwrap_err()
            .message()
            .contains("no kernel"));
        // Scope reset: kernel b cannot see kernel a's arrays.
        let bad = "kernel a { arrays x; x[0] = 1; } kernel b { arrays y; x[0] = 2; }";
        assert!(parse_program(bad)
            .unwrap_err()
            .message()
            .contains("unknown array"));
    }

    #[test]
    fn statement_and_header_spans_are_recorded() {
        let src = "kernel k {\n  arrays a;\n  a[0] = 1;\n  a[1] = 2;\n}";
        let parsed = parse_kernel(src).unwrap();
        assert_eq!(parsed.span, Span::new(1, 1));
        assert_eq!(
            parsed.stmt_spans,
            vec![Span::new(3, 3), Span::new(4, 3)],
            "one span per body statement, at the statement start"
        );
    }

    #[test]
    fn comments_are_ignored() {
        let src = "// leading\nkernel k { // inline\n arrays a; // more\n a[0] = 1; }";
        assert!(parse_kernel(src).is_ok());
    }

    #[test]
    fn parsed_kernels_lower_and_schedule() {
        use bsched_dag::{build_dag, AliasModel};
        let parsed = parse_kernel(DAXPY).unwrap();
        let block = lower_kernel(&parsed.kernel, parsed.frequency);
        assert_eq!(block.frequency(), 1000.0);
        let dag = build_dag(&block, AliasModel::Fortran);
        assert_eq!(dag.len(), block.len());
    }

    #[test]
    fn unexpected_character_is_rejected() {
        let err = parse_kernel("kernel k { arrays a; a[0] = 1 # 2; }").unwrap_err();
        assert!(err.message().contains("unexpected character"));
    }
}
