//! The performance model: admissible lower bounds that let the drivers
//! prune candidates without simulating them.
//!
//! A compiled block's simulated runtime can never drop below either of
//! two static quantities: the issue-slot bound (`⌈len / issue_width⌉` —
//! every instruction occupies a slot) or the critical-path bound (the
//! ASAP level count of a freshly built DAG — every operation takes at
//! least one cycle, so a dependence chain of *k* instructions takes at
//! least *k* cycles). Program runtime is the frequency-weighted sum of
//! block runtimes, so the weighted sum of block bounds is an admissible
//! lower bound on [`mean_runtime`](bsched_pipeline::ProgramEval).
//!
//! Because spills *add* instructions, a candidate that schedules into
//! heavy spilling often has a static bound already above the incumbent's
//! measured score; the drivers skip its 30-run simulation entirely.
//! Pruning is sound: it can only discard candidates that provably
//! cannot beat the incumbent, so the search result is unchanged.

use bsched_dag::{build_dag, critical_path_length, AliasModel};
use bsched_ir::BasicBlock;
use bsched_pipeline::CompiledProgram;

/// Admissible lower bound on one compiled block's per-run cycle count.
#[must_use]
pub fn block_lower_bound(block: &BasicBlock, issue_width: u32, alias: AliasModel) -> f64 {
    let width = u64::from(issue_width.max(1));
    let issue_slots = (block.len() as u64).div_ceil(width);
    let chain = u64::from(critical_path_length(&build_dag(block, alias)));
    #[allow(clippy::cast_precision_loss)]
    let bound = issue_slots.max(chain) as f64;
    bound
}

/// Admissible lower bound on a compiled program's mean runtime:
/// frequency-weighted sum of per-block bounds, mirroring the §4.3
/// aggregation [`evaluate`](bsched_pipeline::evaluate) performs.
#[must_use]
pub fn schedule_lower_bound(program: &CompiledProgram, issue_width: u32, alias: AliasModel) -> f64 {
    program
        .blocks
        .iter()
        .map(|cb| cb.block.frequency() * block_lower_bound(&cb.block, issue_width, alias))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_memsim::MemorySystem;
    use bsched_pipeline::{evaluate, EvalConfig, Pipeline, SchedulerChoice};
    use bsched_workload::perfect_club;

    #[test]
    fn bound_never_exceeds_the_measured_runtime() {
        let pipeline = Pipeline::default();
        let system: MemorySystem = "N(30,5)".parse().unwrap();
        let cfg = EvalConfig {
            runs: 4,
            ..EvalConfig::default()
        };
        for bench in perfect_club().iter().take(2) {
            let compiled = pipeline
                .compile(bench.function(), &SchedulerChoice::balanced())
                .unwrap();
            let bound = schedule_lower_bound(&compiled, cfg.issue_width, pipeline.alias);
            let eval = evaluate(&compiled, &system, &cfg);
            assert!(
                bound <= eval.mean_runtime,
                "{}: bound {bound} > measured {}",
                bench.name(),
                eval.mean_runtime
            );
        }
    }
}
