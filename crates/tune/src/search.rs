//! The search drivers: beam search and Monte-Carlo tree search over the
//! staged candidate space.
//!
//! Both drivers share one evaluation harness: a candidate is compiled
//! through the full two-pass [`Pipeline`], pruned against the
//! incumbent's score via the [`model`](crate::model) lower bound, and
//! otherwise measured with the §4.3 protocol (`runs` seeded simulations,
//! bootstrap mean). Every candidate runs under the optional per-candidate
//! wall-clock timeout; a stuck candidate (e.g. the `tune-stall` fault
//! site) is quarantined as [`CandidateOutcome::TimedOut`] and the search
//! continues.
//!
//! Determinism: batches are evaluated with
//! [`parallel_map_with`](bsched_par::parallel_map_with) under the
//! config's explicit thread budget, incumbent snapshots advance only at
//! batch boundaries, and candidate evaluation is a pure function of
//! `(candidate, incumbent, seed)` — so a `(driver, seed)` pair yields a
//! bit-identical winner and score at any thread count.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use bsched_cpusim::ProcessorModel;
use bsched_dag::AliasModel;
use bsched_faults::{fault_point, Site};
use bsched_ir::Function;
use bsched_memsim::{LatencyModel, MemorySystem};
use bsched_par::{parallel_map_with, run_with_timeout};
use bsched_pipeline::{try_evaluate, EvalConfig, Pipeline, PolicySpec, SchedulerChoice};
use bsched_stats::Pcg32;

use crate::journal::{fingerprint_mix, CandidateOutcome, TuneJournal};
use crate::model::schedule_lower_bound;
use crate::space::CandidateSpace;

/// Which search driver walks the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Driver {
    /// Stage-synchronous beam search: evaluate every stage-1 completion,
    /// keep the best `beam_width`, extend through stages 2 and 3.
    #[default]
    Beam,
    /// Monte-Carlo tree search over the same three decision stages with
    /// UCB1 selection; seed-dependent tie-breaking explores the space.
    Mcts,
}

impl Driver {
    /// Stable kebab-case driver name (CLI spelling and artifact field).
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Driver::Beam => "beam",
            Driver::Mcts => "mcts",
        }
    }

    /// Looks a driver up by its [`id`](Driver::id).
    #[must_use]
    pub fn from_id(id: &str) -> Option<Driver> {
        match id {
            "beam" => Some(Driver::Beam),
            "mcts" => Some(Driver::Mcts),
            _ => None,
        }
    }
}

impl fmt::Display for Driver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Search parameters. The defaults match the committed `BENCH_tune.json`
/// configuration.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Which driver walks the space.
    pub driver: Driver,
    /// Master seed: feeds candidate evaluation (every candidate sees the
    /// same latency draws, so comparisons are paired) and the MCTS
    /// tie-break stream.
    pub seed: u64,
    /// Beam survivors kept per stage (beam driver).
    pub beam_width: usize,
    /// Playouts (MCTS driver).
    pub iterations: usize,
    /// Simulated runs per block per candidate (§4.3 uses 30).
    pub runs: u32,
    /// Thread budget for batch evaluation. Explicit rather than
    /// environment-derived so determinism tests can compare budgets
    /// in-process.
    pub threads: usize,
    /// Processor model candidates are measured on.
    pub processor: ProcessorModel,
    /// Memory disambiguation discipline.
    pub alias: AliasModel,
    /// Per-candidate wall-clock budget; a candidate that exceeds it is
    /// quarantined, not fatal. `None` disables the watchdog.
    pub candidate_timeout: Option<Duration>,
    /// Crash-safe journal path; `None` disables resumption.
    pub journal: Option<PathBuf>,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self {
            driver: Driver::Beam,
            seed: EvalConfig::default().seed,
            beam_width: 3,
            iterations: 96,
            runs: 30,
            threads: bsched_par::max_threads(),
            processor: ProcessorModel::Unlimited,
            alias: AliasModel::Fortran,
            candidate_timeout: None,
            journal: None,
        }
    }
}

/// What a finished search found.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneReport {
    /// Best-scoring policy (ties resolve to the earliest evaluated, so a
    /// no-win search returns the balanced baseline itself).
    pub best: PolicySpec,
    /// The winner's mean runtime in cycles (lower is better).
    pub best_score: f64,
    /// The balanced baseline the search is anchored to.
    pub baseline: PolicySpec,
    /// The baseline's mean runtime under the identical protocol.
    pub baseline_score: f64,
    /// Candidates fully measured this run.
    pub evaluated: usize,
    /// Candidates discarded by the lower-bound model without simulation.
    pub pruned: usize,
    /// Candidates quarantined (timeout or typed failure).
    pub skipped: usize,
    /// Candidates restored from the journal instead of re-measured.
    pub resumed: usize,
    /// Total candidates in the space.
    pub space_size: usize,
}

impl TuneReport {
    /// Percentage improvement of the winner over the balanced baseline
    /// (0 when the baseline itself wins).
    #[must_use]
    pub fn improvement_percent(&self) -> f64 {
        if self.baseline_score <= 0.0 {
            return 0.0;
        }
        (self.baseline_score - self.best_score) / self.baseline_score * 100.0
    }
}

/// Why a search could not produce a report.
#[derive(Debug)]
pub enum TuneError {
    /// The function has no blocks to schedule.
    EmptyFunction,
    /// The balanced baseline itself failed to compile or evaluate, so
    /// there is nothing sound to compare candidates against.
    BaselineFailed(String),
    /// The crash-safe journal could not be opened.
    Journal(std::io::Error),
}

impl fmt::Display for TuneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TuneError::EmptyFunction => write!(f, "nothing to tune: the function has no blocks"),
            TuneError::BaselineFailed(reason) => {
                write!(f, "balanced baseline failed to evaluate: {reason}")
            }
            TuneError::Journal(e) => write!(f, "tune journal: {e}"),
        }
    }
}

impl std::error::Error for TuneError {}

/// Everything a candidate evaluation needs, cheaply cloneable into the
/// watchdog thread.
struct Ctx {
    function: Arc<Function>,
    system: MemorySystem,
    pipeline: Pipeline,
    eval: EvalConfig,
    timeout: Option<Duration>,
}

enum EvalResult {
    Outcome(CandidateOutcome),
    Pruned,
}

/// Compiles, bound-checks, and (if it survives) measures one candidate.
/// Pure given `(spec, incumbent)` and the context — both drivers rely on
/// this for thread-count-independent results.
fn evaluate_candidate(ctx: &Ctx, spec: PolicySpec, incumbent: Option<f64>) -> EvalResult {
    let function = Arc::clone(&ctx.function);
    let system = ctx.system;
    let pipeline = ctx.pipeline;
    let eval = ctx.eval;
    // The candidate's canonical string is the fault cell context, so a
    // plan can target one candidate (e.g. `tune-stall:key=family=average`)
    // and the quarantine test can prove the rest of the search survives.
    let canon = spec.canonical();
    let body = move || -> EvalResult {
        bsched_faults::with_cell_context(&canon, 0, || {
            if let Some(fault) = fault_point!(Site::TuneStall) {
                std::thread::sleep(Duration::from_millis(fault.arg));
            }
            let choice = SchedulerChoice::Tuned(spec);
            let compiled = match pipeline.compile(&function, &choice) {
                Ok(c) => c,
                Err(e) => return EvalResult::Outcome(CandidateOutcome::Failed(e.to_string())),
            };
            if let Some(best) = incumbent {
                if schedule_lower_bound(&compiled, eval.issue_width, pipeline.alias) >= best {
                    return EvalResult::Pruned;
                }
            }
            match try_evaluate(&compiled, &system, &eval) {
                Ok(e) => EvalResult::Outcome(CandidateOutcome::Score(e.mean_runtime)),
                Err(e) => EvalResult::Outcome(CandidateOutcome::Failed(e.to_string())),
            }
        })
    };
    match ctx.timeout {
        Some(limit) => {
            run_with_timeout(limit, body).unwrap_or(EvalResult::Outcome(CandidateOutcome::TimedOut))
        }
        None => body(),
    }
}

struct SearchState {
    ctx: Ctx,
    journal: Option<TuneJournal>,
    /// Canonical policy → score (`None` = pruned / quarantined).
    memo: BTreeMap<String, Option<f64>>,
    best: Option<(f64, PolicySpec)>,
    evaluated: usize,
    pruned: usize,
    skipped: usize,
    resumed: usize,
}

impl SearchState {
    fn note_score(&mut self, spec: PolicySpec, score: f64) {
        let better = match self.best {
            Some((incumbent, _)) => score < incumbent,
            None => true,
        };
        if better {
            self.best = Some((score, spec));
        }
    }

    /// Evaluates a batch of candidates with one incumbent snapshot,
    /// returning a score per input slot. Memoized and journal-resumed
    /// candidates cost nothing; duplicates within the batch are measured
    /// once.
    fn evaluate_batch(&mut self, specs: &[PolicySpec], threads: usize) -> Vec<Option<f64>> {
        let incumbent = self.best.map(|(score, _)| score);
        let mut fresh: Vec<PolicySpec> = Vec::new();
        let mut queued: BTreeMap<String, ()> = BTreeMap::new();
        for spec in specs {
            let canon = spec.canonical();
            if self.memo.contains_key(&canon) || queued.contains_key(&canon) {
                continue;
            }
            if let Some(outcome) = self.journal.as_ref().and_then(|j| j.lookup(&canon)) {
                self.resumed += 1;
                let score = match outcome {
                    CandidateOutcome::Score(s) => Some(s),
                    CandidateOutcome::TimedOut | CandidateOutcome::Failed(_) => None,
                };
                if let Some(s) = score {
                    self.note_score(*spec, s);
                }
                self.memo.insert(canon, score);
                continue;
            }
            queued.insert(canon, ());
            fresh.push(*spec);
        }

        let ctx = &self.ctx;
        let results = parallel_map_with(threads.max(1), &fresh, |_, spec| {
            evaluate_candidate(ctx, *spec, incumbent)
        });
        for (spec, result) in fresh.iter().zip(results) {
            let canon = spec.canonical();
            match result {
                EvalResult::Pruned => {
                    self.pruned += 1;
                    self.memo.insert(canon, None);
                }
                EvalResult::Outcome(outcome) => {
                    if let Some(journal) = &self.journal {
                        journal.record(&canon, &outcome);
                    }
                    match outcome {
                        CandidateOutcome::Score(s) => {
                            self.evaluated += 1;
                            self.note_score(*spec, s);
                            self.memo.insert(canon, Some(s));
                        }
                        CandidateOutcome::TimedOut | CandidateOutcome::Failed(_) => {
                            self.skipped += 1;
                            self.memo.insert(canon, None);
                        }
                    }
                }
            }
        }
        specs
            .iter()
            .map(|spec| self.memo.get(&spec.canonical()).copied().flatten())
            .collect()
    }

    /// Stage-synchronous beam search.
    fn beam(&mut self, space: &CandidateSpace, cfg: &TuneConfig) {
        let width = cfg.beam_width.max(1);
        let default_rounding = space.roundings()[0];
        let default_ties = space.tie_chains()[0];

        // The baseline evaluates alone first so it is the incumbent every
        // later candidate must beat for the pruning model to engage.
        self.evaluate_batch(&[PolicySpec::balanced_default()], 1);

        let stage1: Vec<PolicySpec> = space
            .families()
            .iter()
            .map(|&family| PolicySpec {
                family,
                rounding: default_rounding,
                ties: default_ties,
            })
            .collect();
        let scores = self.evaluate_batch(&stage1, cfg.threads);
        let survivors = top_k(&stage1, &scores, width);

        let stage2: Vec<PolicySpec> = survivors
            .iter()
            .flat_map(|spec| {
                space
                    .roundings()
                    .iter()
                    .map(move |&rounding| PolicySpec { rounding, ..*spec })
            })
            .collect();
        let scores = self.evaluate_batch(&stage2, cfg.threads);
        let survivors = top_k(&stage2, &scores, width);

        let stage3: Vec<PolicySpec> = survivors
            .iter()
            .flat_map(|spec| {
                space
                    .tie_chains()
                    .iter()
                    .map(move |&ties| PolicySpec { ties, ..*spec })
            })
            .collect();
        self.evaluate_batch(&stage3, cfg.threads);
    }

    /// UCB1 Monte-Carlo tree search over family → rounding → ties.
    fn mcts(&mut self, space: &CandidateSpace, cfg: &TuneConfig) {
        self.evaluate_batch(&[PolicySpec::balanced_default()], 1);
        let Some((baseline_score, _)) = self.best else {
            return; // baseline failed; tune() surfaces the error
        };
        let (nf, nr, nt) = (
            space.families().len(),
            space.roundings().len(),
            space.tie_chains().len(),
        );
        let mut family_arms = vec![Arm::default(); nf];
        let mut rounding_arms = vec![vec![Arm::default(); nr]; nf];
        let mut tie_arms = vec![vec![vec![Arm::default(); nt]; nr]; nf];
        let mut rng = Pcg32::seed_from_u64(cfg.seed ^ 0x6d63_7473);
        for _ in 0..cfg.iterations {
            let f = select_arm(&family_arms, &mut rng);
            let r = select_arm(&rounding_arms[f], &mut rng);
            let t = select_arm(&tie_arms[f][r], &mut rng);
            let spec = PolicySpec {
                family: space.families()[f],
                rounding: space.roundings()[r],
                ties: space.tie_chains()[t],
            };
            let score = self.evaluate_batch(&[spec], 1)[0];
            // Reward > 1 beats the baseline; quarantined/pruned playouts
            // earn 0 so their subtree decays.
            let reward = score.map_or(0.0, |s| baseline_score / s.max(1.0));
            family_arms[f].add(reward);
            rounding_arms[f][r].add(reward);
            tie_arms[f][r][t].add(reward);
        }
    }
}

/// One UCB1 bandit arm.
#[derive(Debug, Clone, Copy, Default)]
struct Arm {
    visits: u32,
    total: f64,
}

impl Arm {
    fn add(&mut self, reward: f64) {
        self.visits += 1;
        self.total += reward;
    }
}

/// UCB1 selection: unvisited arms first (lowest index), then the
/// highest upper confidence bound with seed-dependent tie-breaking.
fn select_arm(arms: &[Arm], rng: &mut Pcg32) -> usize {
    if let Some(unvisited) = arms.iter().position(|a| a.visits == 0) {
        return unvisited;
    }
    let parent: u32 = arms.iter().map(|a| a.visits).sum();
    let ln_parent = f64::from(parent.max(1)).ln();
    let ucb =
        |a: &Arm| a.total / f64::from(a.visits) + (2.0 * ln_parent / f64::from(a.visits)).sqrt();
    let best = arms.iter().map(ucb).fold(f64::NEG_INFINITY, f64::max);
    let tied: Vec<usize> = arms
        .iter()
        .enumerate()
        .filter(|(_, a)| ucb(a) >= best)
        .map(|(i, _)| i)
        .collect();
    tied[(rng.next_u32() as usize) % tied.len()]
}

/// Keeps the `k` best-scoring candidates, ties resolved by batch order.
fn top_k(specs: &[PolicySpec], scores: &[Option<f64>], k: usize) -> Vec<PolicySpec> {
    let mut ranked: Vec<(usize, f64)> = scores
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.map(|score| (i, score)))
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    ranked.iter().take(k).map(|&(i, _)| specs[i]).collect()
}

/// Derives the journal fingerprint: everything that determines candidate
/// scores or the shape of the search.
fn fingerprint(function: &Function, system: &MemorySystem, cfg: &TuneConfig) -> String {
    let mut acc = fingerprint_mix(0, function.name().as_bytes());
    for block in function.blocks() {
        acc = fingerprint_mix(acc, block.name().as_bytes());
        acc = fingerprint_mix(acc, &(block.len() as u64).to_le_bytes());
        acc = fingerprint_mix(acc, &block.frequency().to_bits().to_le_bytes());
    }
    acc = fingerprint_mix(acc, system.name().as_bytes());
    acc = fingerprint_mix(acc, &cfg.seed.to_le_bytes());
    acc = fingerprint_mix(acc, &u64::from(cfg.runs).to_le_bytes());
    acc = fingerprint_mix(acc, cfg.driver.id().as_bytes());
    acc = fingerprint_mix(acc, &(cfg.beam_width as u64).to_le_bytes());
    acc = fingerprint_mix(acc, &(cfg.iterations as u64).to_le_bytes());
    acc = fingerprint_mix(acc, format!("{:?}", cfg.processor).as_bytes());
    acc = fingerprint_mix(acc, format!("{:?}", cfg.alias).as_bytes());
    format!("{acc:016x}")
}

/// Searches the policy space for the scheduler that minimises
/// `function`'s mean runtime under `system`.
///
/// The balanced baseline is always evaluated first and is itself a
/// member of the space, so `best_score <= baseline_score` whenever the
/// search returns at all.
///
/// # Errors
///
/// [`TuneError::EmptyFunction`] when there is nothing to schedule,
/// [`TuneError::BaselineFailed`] when the balanced baseline itself
/// cannot be measured, and [`TuneError::Journal`] when the configured
/// journal path cannot be opened.
pub fn tune(
    function: &Function,
    system: &MemorySystem,
    cfg: &TuneConfig,
) -> Result<TuneReport, TuneError> {
    if function.blocks().is_empty() {
        return Err(TuneError::EmptyFunction);
    }
    let space = CandidateSpace::for_system(system);
    let journal = match &cfg.journal {
        Some(path) => {
            let j = TuneJournal::open(path, &fingerprint(function, system, cfg))
                .map_err(TuneError::Journal)?;
            if j.discarded() > 0 {
                eprintln!(
                    "warning: tune journal {}: fingerprint changed; discarded {} recorded \
                     candidate(s) instead of resuming",
                    path.display(),
                    j.discarded()
                );
            }
            Some(j)
        }
        None => None,
    };
    let ctx = Ctx {
        function: Arc::new(function.clone()),
        system: *system,
        pipeline: Pipeline {
            alias: cfg.alias,
            ..Pipeline::default()
        },
        eval: EvalConfig {
            runs: cfg.runs,
            processor: cfg.processor,
            seed: cfg.seed,
            ..EvalConfig::default()
        },
        timeout: cfg.candidate_timeout,
    };
    let mut search = SearchState {
        ctx,
        journal,
        memo: BTreeMap::new(),
        best: None,
        evaluated: 0,
        pruned: 0,
        skipped: 0,
        resumed: 0,
    };
    match cfg.driver {
        Driver::Beam => search.beam(&space, cfg),
        Driver::Mcts => search.mcts(&space, cfg),
    }
    let baseline = PolicySpec::balanced_default();
    let baseline_score = search
        .memo
        .get(&baseline.canonical())
        .copied()
        .flatten()
        .ok_or_else(|| {
            TuneError::BaselineFailed("no score recorded for the balanced baseline".to_owned())
        })?;
    let (best_score, best) = search.best.ok_or_else(|| {
        TuneError::BaselineFailed("search finished without any scored candidate".to_owned())
    })?;
    Ok(TuneReport {
        best,
        best_score,
        baseline,
        baseline_score,
        evaluated: search.evaluated,
        pruned: search.pruned,
        skipped: search.skipped,
        resumed: search.resumed,
        space_size: space.len(),
    })
}
