//! The candidate space: every scheduling policy the tuner may try.
//!
//! Following the space/model/driver separation of search-based
//! compilation (Telamon-style), the space is a *declarative* cross
//! product of three staged decisions — weight family, fractional-weight
//! rounding, and ready-list tie-break chain — and knows nothing about
//! how candidates are scored or traversed. Both drivers walk the same
//! stages in the same order, so a `(driver, seed)` pair identifies a
//! reproducible search.
//!
//! The space always contains [`PolicySpec::balanced_default`] (the
//! paper's balanced scheduler verbatim), which is evaluated first as the
//! incumbent. A tuned result can therefore never score worse than
//! balanced under the same evaluation protocol.

use bsched_core::{Ratio, Rounding, TieBreakChain};
use bsched_dag::ChancesMethod;
use bsched_memsim::{LatencyModel, MemorySystem};
use bsched_pipeline::{PolicySpec, WeightFamily};

/// Tie-break chains the space enumerates, as parseable specs. The first
/// entry is the paper's §4.1 chain (the [`TieBreakChain::default`]), so
/// the balanced baseline is always stage-3 candidate zero.
const TIE_CHAINS: [&str; 8] = [
    "pressure+,exposed+",
    "",
    "slack-",
    "slack-,pressure+",
    "density+,slack-",
    "exposed+,pressure+",
    "pressure+,exposed+,slack-",
    "slack-,density+,pressure+",
];

/// A declarative cross product of weight families, roundings, and
/// tie-break chains.
#[derive(Debug, Clone)]
pub struct CandidateSpace {
    families: Vec<WeightFamily>,
    roundings: Vec<Rounding>,
    ties: Vec<TieBreakChain>,
}

impl CandidateSpace {
    /// The space anchored to `system`'s optimistic latency: traditional
    /// and blended families use it as their fixed-latency endpoint, the
    /// same derivation `bsched compare` applies when `--optimistic` is
    /// omitted.
    #[must_use]
    pub fn for_system(system: &MemorySystem) -> Self {
        Self::for_optimistic_latency(system.optimistic_latency())
    }

    /// The space anchored to an explicit optimistic load latency.
    #[must_use]
    pub fn for_optimistic_latency(latency: f64) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let opt = Ratio::from_int(latency.round().max(1.0) as i64);
        let mut families = vec![
            WeightFamily::Balanced {
                method: ChancesMethod::Exact,
            },
            WeightFamily::Balanced {
                method: ChancesMethod::LevelApprox,
            },
            WeightFamily::Average,
            WeightFamily::Traditional {
                latency: Ratio::ONE,
            },
        ];
        if opt != Ratio::ONE {
            families.push(WeightFamily::Traditional { latency: opt });
        }
        for share in [Ratio::new(1, 4), Ratio::new(1, 2), Ratio::new(3, 4)] {
            families.push(WeightFamily::Blend {
                latency: opt,
                share,
            });
        }
        let ties = TIE_CHAINS
            .iter()
            .map(|spec| TieBreakChain::parse(spec).expect("curated chain specs parse"))
            .collect();
        Self {
            families,
            roundings: vec![Rounding::Nearest, Rounding::Floor, Rounding::Ceil],
            ties,
        }
    }

    /// Stage-1 decisions: the weight families.
    #[must_use]
    pub fn families(&self) -> &[WeightFamily] {
        &self.families
    }

    /// Stage-2 decisions: the rounding modes.
    #[must_use]
    pub fn roundings(&self) -> &[Rounding] {
        &self.roundings
    }

    /// Stage-3 decisions: the tie-break chains.
    #[must_use]
    pub fn tie_chains(&self) -> &[TieBreakChain] {
        &self.ties
    }

    /// Total number of complete candidates in the cross product.
    #[must_use]
    pub fn len(&self) -> usize {
        self.families.len() * self.roundings.len() * self.ties.len()
    }

    /// Whether the space is empty (it never is for the constructors
    /// above; kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every complete candidate, in deterministic
    /// family-major/rounding/ties order.
    #[must_use]
    pub fn enumerate(&self) -> Vec<PolicySpec> {
        let mut out = Vec::with_capacity(self.len());
        for &family in &self.families {
            for &rounding in &self.roundings {
                for &ties in &self.ties {
                    out.push(PolicySpec {
                        family,
                        rounding,
                        ties,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_contains_the_balanced_baseline() {
        let space = CandidateSpace::for_optimistic_latency(30.0);
        assert!(space.enumerate().contains(&PolicySpec::balanced_default()));
    }

    #[test]
    fn enumeration_matches_the_stage_product() {
        let space = CandidateSpace::for_optimistic_latency(3.0);
        let all = space.enumerate();
        assert_eq!(all.len(), space.len());
        // Candidates are pairwise distinct under canonical serialization
        // (the cache-key feed), so no two can collide in the fleet cache.
        let mut canon: Vec<String> = all.iter().map(PolicySpec::canonical).collect();
        canon.sort();
        canon.dedup();
        assert_eq!(canon.len(), all.len());
    }

    #[test]
    fn unit_optimistic_latency_drops_the_duplicate_traditional() {
        let unit = CandidateSpace::for_optimistic_latency(1.0);
        let wide = CandidateSpace::for_optimistic_latency(30.0);
        assert_eq!(unit.families().len() + 1, wide.families().len());
    }
}
