//! Crash-safe search journal.
//!
//! A tuning run over a real benchmark suite evaluates dozens of
//! candidates at 30 simulated runs each; killing the process mid-search
//! should not throw that work away. The journal reuses the bench
//! harness's crash-safe format (DESIGN.md §8): a JSONL file whose first
//! line is a header carrying a fingerprint of everything that determines
//! candidate scores, followed by one record per terminal candidate
//! outcome. Every record atomically rewrites the whole file
//! (temp + rename), so the file on disk is always a parseable prefix of
//! the run. A journal whose fingerprint does not match is discarded
//! whole — resuming must be bit-identical to not having crashed.
//!
//! Scores are serialised as 16-hex-digit [`f64::to_bits`] strings so a
//! resumed candidate is bit-for-bit the candidate that was measured.
//! Pruned candidates are *not* journaled: pruning depends on the
//! incumbent at evaluation time, which the resumed search rediscovers.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use bsched_analyze::json::{self, Json};

/// Magic first-field value identifying a tune journal and its version.
const MAGIC: &str = "bsched-tune-journal-v1";

/// One terminal candidate outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateOutcome {
    /// The candidate evaluated cleanly; lower scores are better
    /// (mean runtime in cycles).
    Score(f64),
    /// The candidate tripped the per-candidate wall-clock timeout and
    /// was quarantined.
    TimedOut,
    /// Compilation or simulation failed with a typed reason.
    Failed(String),
}

struct State {
    lines: Vec<String>,
    entries: HashMap<String, CandidateOutcome>,
}

/// A crash-safe, resumable record of per-candidate outcomes, keyed by
/// the candidate's canonical policy string.
pub struct TuneJournal {
    path: PathBuf,
    header: String,
    state: Mutex<State>,
    discarded: usize,
}

impl TuneJournal {
    /// Opens (or creates) the journal at `path` for a search identified
    /// by `fingerprint`. A matching journal resumes; a mismatched or
    /// unparseable one is discarded whole, with the count reported via
    /// [`discarded`](TuneJournal::discarded).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the parent directory or writing
    /// the initial header.
    pub fn open(path: impl Into<PathBuf>, fingerprint: &str) -> std::io::Result<TuneJournal> {
        let path = path.into();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let header = format!(
            "{{\"journal\":{},\"fingerprint\":{}}}",
            json::string(MAGIC),
            json::string(fingerprint)
        );
        let mut state = State {
            lines: Vec::new(),
            entries: HashMap::new(),
        };
        let mut discarded = 0;
        if let Ok(existing) = std::fs::read_to_string(&path) {
            let mut lines = existing.lines();
            if lines
                .next()
                .is_some_and(|first| header_matches(first, fingerprint))
            {
                for line in lines {
                    if let Some((key, entry)) = parse_line(line) {
                        state.entries.insert(key, entry);
                        state.lines.push(line.to_owned());
                    }
                }
            } else {
                discarded = lines.filter(|l| parse_line(l).is_some()).count();
            }
        }
        let journal = TuneJournal {
            path,
            header,
            state: Mutex::new(state),
            discarded,
        };
        journal.rewrite(&journal.state.lock().unwrap().lines)?;
        Ok(journal)
    }

    /// Number of recorded candidates found on disk but discarded because
    /// the journal's fingerprint did not match this search's.
    #[must_use]
    pub fn discarded(&self) -> usize {
        self.discarded
    }

    /// The journal's on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The recorded outcome for a candidate's canonical string, if any.
    #[must_use]
    pub fn lookup(&self, canonical: &str) -> Option<CandidateOutcome> {
        self.state.lock().unwrap().entries.get(canonical).cloned()
    }

    /// Number of recorded candidates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().entries.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a terminal outcome and atomically rewrites the file.
    /// Write errors are reported to stderr — losing the journal must not
    /// fail the search itself.
    pub fn record(&self, canonical: &str, outcome: &CandidateOutcome) {
        let line = render_line(canonical, outcome);
        let mut state = self.state.lock().unwrap();
        if state.entries.contains_key(canonical) {
            state
                .lines
                .retain(|l| parse_line(l).is_none_or(|(k, _)| k != canonical));
        }
        state.entries.insert(canonical.to_owned(), outcome.clone());
        state.lines.push(line);
        if let Err(e) = self.rewrite(&state.lines) {
            eprintln!("warning: tune journal {}: {e}", self.path.display());
        }
    }

    fn rewrite(&self, lines: &[String]) -> std::io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            writeln!(f, "{}", self.header)?;
            for line in lines {
                writeln!(f, "{line}")?;
            }
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)
    }
}

/// Mixes a byte string into a fingerprint accumulator (FNV-1a, 64-bit).
/// Drivers fold the kernel shape, system, seed, and search parameters
/// through this to derive the journal header.
#[must_use]
pub fn fingerprint_mix(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = if acc == 0 { 0xcbf2_9ce4_8422_2325 } else { acc };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn header_matches(line: &str, fingerprint: &str) -> bool {
    let Some(v) = json::parse(line) else {
        return false;
    };
    v.get("journal").and_then(Json::as_str) == Some(MAGIC)
        && v.get("fingerprint").and_then(Json::as_str) == Some(fingerprint)
}

/// One f64, bit-exact, as a 16-hex-digit JSON string.
fn hex(v: f64) -> String {
    format!("\"{:016x}\"", v.to_bits())
}

fn unhex(v: &Json) -> Option<f64> {
    let s = v.as_str()?;
    (s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()))
        .then(|| u64::from_str_radix(s, 16).ok().map(f64::from_bits))
        .flatten()
}

fn render_line(canonical: &str, outcome: &CandidateOutcome) -> String {
    match outcome {
        CandidateOutcome::Score(score) => format!(
            "{{\"candidate\":{},\"status\":\"ok\",\"score\":{}}}",
            json::string(canonical),
            hex(*score)
        ),
        CandidateOutcome::TimedOut => format!(
            "{{\"candidate\":{},\"status\":\"timeout\"}}",
            json::string(canonical)
        ),
        CandidateOutcome::Failed(reason) => format!(
            "{{\"candidate\":{},\"status\":\"failed\",\"reason\":{}}}",
            json::string(canonical),
            json::string(reason)
        ),
    }
}

fn parse_line(line: &str) -> Option<(String, CandidateOutcome)> {
    let v = json::parse(line)?;
    let key = v.get("candidate").and_then(Json::as_str)?.to_owned();
    let outcome = match v.get("status").and_then(Json::as_str)? {
        "ok" => CandidateOutcome::Score(v.get("score").and_then(unhex)?),
        "timeout" => CandidateOutcome::TimedOut,
        "failed" => CandidateOutcome::Failed(
            v.get("reason")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_owned(),
        ),
        _ => return None,
    };
    Some((key, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "bsched-tune-journal-{}-{name}.jsonl",
            std::process::id()
        ));
        p
    }

    #[test]
    fn outcomes_roundtrip_bit_exactly() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let score = 1234.5678901234567_f64;
        {
            let j = TuneJournal::open(&path, "fp-1").unwrap();
            j.record(
                "family=balanced;rounding=nearest;ties=",
                &CandidateOutcome::Score(score),
            );
            j.record("candidate-b", &CandidateOutcome::TimedOut);
            j.record(
                "candidate-c",
                &CandidateOutcome::Failed("spill pool".into()),
            );
        }
        let j = TuneJournal::open(&path, "fp-1").unwrap();
        assert_eq!(j.len(), 3);
        match j.lookup("family=balanced;rounding=nearest;ties=").unwrap() {
            CandidateOutcome::Score(s) => assert_eq!(s.to_bits(), score.to_bits()),
            other => panic!("wrong outcome {other:?}"),
        }
        assert_eq!(j.lookup("candidate-b"), Some(CandidateOutcome::TimedOut));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_discards_whole() {
        let path = tmp_path("mismatch");
        let _ = std::fs::remove_file(&path);
        {
            let j = TuneJournal::open(&path, "fp-1").unwrap();
            j.record("c1", &CandidateOutcome::Score(1.0));
        }
        let j = TuneJournal::open(&path, "fp-2").unwrap();
        assert!(j.is_empty());
        assert_eq!(j.discarded(), 1);
        let _ = std::fs::remove_file(&path);
    }
}
