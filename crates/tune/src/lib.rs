//! `bsched-tune` — search-based schedule autotuning (DESIGN.md §15).
//!
//! The paper's balanced scheduler is one fixed point in a larger design
//! space: how per-load weights are assigned (balanced, traditional,
//! their convex blends, block-average), how fractional weights round,
//! and how ready-list ties break. This crate searches that space for the
//! policy that minimises a kernel's measured mean runtime under a given
//! memory system, following the candidate-space / performance-model /
//! search-driver separation of search-based compilation:
//!
//! * [`CandidateSpace`] — the declarative cross product of staged
//!   decisions (weight family × rounding × tie-break chain). It always
//!   contains the paper's balanced scheduler, so a tuned policy can
//!   never lose to it under the same protocol.
//! * [`model`] — admissible static lower bounds (issue slots, critical
//!   path) that prune candidates which provably cannot beat the
//!   incumbent, before paying for simulation.
//! * [`tune`] with [`Driver::Beam`] or [`Driver::Mcts`] — deterministic
//!   search under an explicit seed and thread budget, with per-candidate
//!   wall-clock quarantine and a crash-safe resumable [`TuneJournal`].
//!
//! The winner is a plain [`PolicySpec`](bsched_pipeline::PolicySpec):
//! first-class everywhere a
//! [`SchedulerChoice`](bsched_pipeline::SchedulerChoice) is accepted —
//! the CLI (`--scheduler policy:<file>`), the serving daemon
//! (`"scheduler":"policy:<canonical>"`), and the fleet cache, which
//! keys on the policy's canonical string.
//!
//! # Quick start
//!
//! ```
//! use bsched_memsim::MemorySystem;
//! use bsched_tune::{tune, TuneConfig};
//! use bsched_workload::perfect_club;
//!
//! let system: MemorySystem = "N(3,2)".parse().unwrap();
//! let bench = &perfect_club()[0];
//! let cfg = TuneConfig { runs: 2, ..TuneConfig::default() };
//! let report = tune(bench.function(), &system, &cfg).unwrap();
//! assert!(report.best_score <= report.baseline_score);
//! ```

#![warn(missing_docs)]

pub mod journal;
pub mod model;
pub mod search;
pub mod space;

pub use journal::{CandidateOutcome, TuneJournal};
pub use search::{tune, Driver, TuneConfig, TuneError, TuneReport};
pub use space::CandidateSpace;
