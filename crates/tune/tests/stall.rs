//! The `tune-stall` fault site: a candidate whose evaluation hangs must
//! be quarantined by the per-candidate watchdog without aborting the
//! search. Lives in its own integration binary because the fault plan is
//! process-global.

use bsched_faults::{FaultPlan, FaultSpec, Site};
use bsched_ir::Function;
use bsched_memsim::MemorySystem;
use bsched_tune::{tune, Driver, TuneConfig};
use bsched_workload::kernels::daxpy;
use bsched_workload::lower_kernel;

#[test]
fn stalled_candidate_is_quarantined_not_fatal() {
    // Target exactly the average-parallelism candidate by its canonical
    // cell context; every other candidate evaluates normally.
    let plan = FaultPlan::seeded(1).with(
        FaultSpec::always(Site::TuneStall)
            .with_key("family=average")
            .with_arg(5_000),
    );
    bsched_faults::install(plan);

    let func = Function::new("stall", vec![lower_kernel(&daxpy(), 1.0)]);
    let system: MemorySystem = "N(3,2)".parse().unwrap();
    let cfg = TuneConfig {
        driver: Driver::Beam,
        seed: 7,
        beam_width: 2,
        runs: 2,
        threads: 2,
        candidate_timeout: Some(std::time::Duration::from_millis(500)),
        ..TuneConfig::default()
    };
    let report = tune(&func, &system, &cfg).unwrap();
    bsched_faults::clear();

    assert!(
        report.skipped >= 1,
        "the stalled candidate must be quarantined"
    );
    assert!(report.best_score <= report.baseline_score);
    assert!(
        !report.best.canonical().contains("family=average"),
        "a quarantined candidate must not win"
    );
}
