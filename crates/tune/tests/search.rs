//! Driver-level guarantees: determinism across thread budgets, seed
//! reproducibility, journal resumption, and the space-wide safety
//! property that every candidate policy compiles to verifier-clean
//! schedules.

use bsched_ir::Function;
use bsched_memsim::MemorySystem;
use bsched_pipeline::{Pipeline, PolicySpec, SchedulerChoice};
use bsched_stats::Pcg32;
use bsched_tune::{tune, CandidateSpace, Driver, TuneConfig, TuneReport};
use bsched_verify::ValidationLevel;
use bsched_workload::kernels::{daxpy, stencil3};
use bsched_workload::{lower_kernel, GeneratorConfig};
use proptest::prelude::*;

fn small_function() -> Function {
    let blocks = vec![lower_kernel(&daxpy(), 10.0), lower_kernel(&stencil3(), 5.0)];
    Function::new("tune-e2e", blocks)
}

fn quick_config(driver: Driver, threads: usize) -> TuneConfig {
    TuneConfig {
        driver,
        seed: 42,
        beam_width: 2,
        iterations: 12,
        runs: 2,
        threads,
        ..TuneConfig::default()
    }
}

fn fingerprint(report: &TuneReport) -> (String, u64, usize, usize, usize) {
    (
        report.best.canonical(),
        report.best_score.to_bits(),
        report.evaluated,
        report.pruned,
        report.skipped,
    )
}

#[test]
fn beam_is_bit_identical_across_thread_budgets() {
    let func = small_function();
    let system: MemorySystem = "N(30,5)".parse().unwrap();
    let serial = tune(&func, &system, &quick_config(Driver::Beam, 1)).unwrap();
    let parallel = tune(&func, &system, &quick_config(Driver::Beam, 7)).unwrap();
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    assert_eq!(
        serial.baseline_score.to_bits(),
        parallel.baseline_score.to_bits()
    );
}

#[test]
fn mcts_is_bit_identical_across_thread_budgets() {
    let func = small_function();
    let system: MemorySystem = "N(30,5)".parse().unwrap();
    let serial = tune(&func, &system, &quick_config(Driver::Mcts, 1)).unwrap();
    let parallel = tune(&func, &system, &quick_config(Driver::Mcts, 7)).unwrap();
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}

#[test]
fn same_seed_reproduces_policy_and_score() {
    let func = small_function();
    let system: MemorySystem = "N(30,5)".parse().unwrap();
    for driver in [Driver::Beam, Driver::Mcts] {
        let a = tune(&func, &system, &quick_config(driver, 3)).unwrap();
        let b = tune(&func, &system, &quick_config(driver, 3)).unwrap();
        assert_eq!(a.best.canonical(), b.best.canonical(), "{driver}");
        assert_eq!(a.best_score.to_bits(), b.best_score.to_bits(), "{driver}");
    }
}

#[test]
fn tuned_never_loses_to_the_balanced_baseline() {
    let func = small_function();
    let system: MemorySystem = "N(30,5)".parse().unwrap();
    for driver in [Driver::Beam, Driver::Mcts] {
        let report = tune(&func, &system, &quick_config(driver, 4)).unwrap();
        assert!(
            report.best_score <= report.baseline_score,
            "{driver}: tuned {} > balanced {}",
            report.best_score,
            report.baseline_score
        );
        assert_eq!(report.baseline, PolicySpec::balanced_default());
    }
}

#[test]
fn journal_resumes_without_changing_the_result() {
    let func = small_function();
    let system: MemorySystem = "N(30,5)".parse().unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("bsched-tune-resume-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let cfg = TuneConfig {
        journal: Some(path.clone()),
        ..quick_config(Driver::Beam, 2)
    };
    let first = tune(&func, &system, &cfg).unwrap();
    assert_eq!(first.resumed, 0);
    let second = tune(&func, &system, &cfg).unwrap();
    assert!(
        second.resumed > 0,
        "second run should resume from the journal"
    );
    assert_eq!(second.evaluated, 0, "nothing should re-simulate");
    assert_eq!(fingerprint(&first).0, fingerprint(&second).0);
    assert_eq!(first.best_score.to_bits(), second.best_score.to_bits());
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Differential safety sweep: every policy the candidate space can
    /// generate must compile random blocks into schedules that pass the
    /// independent `bsched-verify` checks (both scheduling passes and
    /// the allocation value-flow check run at `ValidationLevel::Full`).
    #[test]
    fn every_candidate_policy_compiles_verifier_clean(seed in 0u64..1u64 << 48) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let gen = GeneratorConfig { size: 24, ..GeneratorConfig::default() };
        let block = bsched_workload::random_block(&gen, &mut rng);
        let pipeline = Pipeline {
            validation: ValidationLevel::Full,
            ..Pipeline::default()
        };
        let space = CandidateSpace::for_optimistic_latency(3.0);
        for spec in space.enumerate() {
            let choice = SchedulerChoice::Tuned(spec);
            let compiled = pipeline.compile_block(&block, &choice);
            prop_assert!(
                compiled.is_ok(),
                "policy {} failed verification: {:?}",
                spec.canonical(),
                compiled.err()
            );
        }
    }
}
