//! The allocator: on-demand linear scan with Belady eviction.

use std::collections::{HashMap, VecDeque};

use bsched_ir::{
    AccessKind, BasicBlock, Inst, MemAccess, MemLoc, Opcode, PhysReg, Reg, RegClass, RegionId,
    VirtReg,
};

use crate::config::{AllocatorConfig, PoolPolicy};
use crate::liveness::UsePositions;

/// The memory region holding spill slots. Distinct from every workload
/// array region, so under Fortran aliasing spill traffic never conflicts
/// with array traffic — matching a compiler's private stack frame.
pub const SPILL_REGION: RegionId = RegionId::new(3_000_000);

/// Outcome of register allocation on one block.
#[derive(Debug, Clone)]
pub struct AllocResult {
    /// The rewritten block: physical registers, spill code inserted.
    pub block: BasicBlock,
    /// Reload instructions inserted.
    pub spill_loads: usize,
    /// Store-to-slot instructions inserted.
    pub spill_stores: usize,
}

impl AllocResult {
    /// Total instructions inserted by the allocator — the paper's
    /// definition of spill code (§5).
    #[must_use]
    pub fn spill_count(&self) -> usize {
        self.spill_loads + self.spill_stores
    }
}

/// Allocation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The input block already contains physical registers.
    PhysicalInput,
    /// An instruction needs more same-class reloads than the pool holds.
    PoolExhausted {
        /// Registers required at once.
        needed: usize,
        /// Pool capacity.
        have: usize,
    },
    /// An instruction reads a register that was never defined.
    UndefinedUse {
        /// The offending register.
        reg: VirtReg,
    },
    /// The register file/pool configuration cannot allocate at all.
    InvalidConfig {
        /// What is wrong with the configuration.
        detail: String,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::PhysicalInput => write!(f, "input block already uses physical registers"),
            AllocError::PoolExhausted { needed, have } => {
                write!(
                    f,
                    "instruction needs {needed} reload registers, pool has {have}"
                )
            }
            AllocError::UndefinedUse { reg } => write!(f, "use of undefined register {reg}"),
            AllocError::InvalidConfig { detail } => {
                write!(f, "invalid allocator configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Per-class allocation state.
struct ClassState {
    class: RegClass,
    free: Vec<u32>,
    holder: HashMap<u32, VirtReg>,
    assigned: HashMap<VirtReg, u32>,
    pool: VecDeque<u32>,
    policy: PoolPolicy,
}

impl ClassState {
    fn new(class: RegClass, config: &AllocatorConfig) -> Self {
        let general = config.general_regs_of(class);
        let total = config.regs_of(class);
        Self {
            class,
            free: (0..general).rev().collect(),
            holder: HashMap::new(),
            assigned: HashMap::new(),
            pool: (general..total).collect(),
            policy: config.policy,
        }
    }

    fn release(&mut self, v: VirtReg) {
        if let Some(r) = self.assigned.remove(&v) {
            self.holder.remove(&r);
            self.free.push(r);
        }
    }

    /// Picks the next reload register, honouring the pool policy and
    /// avoiding registers already claimed by this instruction.
    fn take_pool_reg(&mut self, in_use_now: &[u32]) -> Result<u32, AllocError> {
        match self.policy {
            PoolPolicy::Fifo => {
                // Rotate the queue until an unclaimed register surfaces.
                for _ in 0..self.pool.len() {
                    let r = self.pool.pop_front().expect("pool is nonempty");
                    self.pool.push_back(r);
                    if !in_use_now.contains(&r) {
                        return Ok(r);
                    }
                }
                Err(AllocError::PoolExhausted {
                    needed: in_use_now.len() + 1,
                    have: self.pool.len(),
                })
            }
            PoolPolicy::Fixed => self
                .pool
                .iter()
                .copied()
                .filter(|r| !in_use_now.contains(r))
                .min()
                .ok_or(AllocError::PoolExhausted {
                    needed: in_use_now.len() + 1,
                    have: self.pool.len(),
                }),
        }
    }
}

/// Allocates physical registers for `block`, inserting spill code where
/// the file overflows.
///
/// The block must use only virtual registers (the output of the first
/// scheduling pass). Values are kept in general registers while live;
/// when the file overflows, the live value with the **farthest next use**
/// is stored to a spill slot (Belady's heuristic — a reasonable stand-in
/// for GCC's priority-based choice). Later uses of spilled values reload
/// through the dedicated **spill register pool**, recycled FIFO or
/// lowest-first per [`PoolPolicy`] (§4.1).
///
/// # Errors
///
/// Returns an error for physical-register inputs, undefined uses, or an
/// instruction whose same-class reload demand exceeds the pool.
pub fn allocate(block: &BasicBlock, config: &AllocatorConfig) -> Result<AllocResult, AllocError> {
    config.check()?;
    if let Some(fault) = bsched_faults::fault_point!(bsched_faults::Site::Alloc) {
        // Simulated spill-pool exhaustion: the error the allocator would
        // raise if an instruction demanded more reloads than the pool.
        return Err(AllocError::PoolExhausted {
            needed: usize::try_from(fault.arg.max(1)).unwrap_or(usize::MAX),
            have: 0,
        });
    }
    let uses_info = UsePositions::compute(block);
    let mut states: HashMap<RegClass, ClassState> = RegClass::ALL
        .into_iter()
        .map(|c| (c, ClassState::new(c, config)))
        .collect();
    let mut slots: HashMap<VirtReg, i64> = HashMap::new();
    let mut stored: HashMap<VirtReg, bool> = HashMap::new();
    let mut next_slot: i64 = 0;
    let mut out: Vec<Inst> = Vec::with_capacity(block.len() + 8);
    let mut spill_loads = 0usize;
    let mut spill_stores = 0usize;

    fn slot_of(slots: &mut HashMap<VirtReg, i64>, next_slot: &mut i64, v: VirtReg) -> i64 {
        *slots.entry(v).or_insert_with(|| {
            let s = *next_slot;
            *next_slot += 8;
            s
        })
    }

    for (idx, inst) in block.insts().iter().enumerate() {
        // Map each distinct used vreg to a physical register, reloading
        // spilled values through the pool.
        let mut mapping: HashMap<VirtReg, PhysReg> = HashMap::new();
        let mut pool_claims: HashMap<RegClass, Vec<u32>> = HashMap::new();
        for &u in inst.uses() {
            let v = u.as_virt().ok_or(AllocError::PhysicalInput)?;
            if mapping.contains_key(&v) {
                continue;
            }
            let state = states.get_mut(&v.class()).expect("state per class");
            if let Some(&r) = state.assigned.get(&v) {
                mapping.insert(v, PhysReg::new(v.class(), r));
            } else if slots.contains_key(&v) {
                // Reload from the spill slot through the pool.
                let claims = pool_claims.entry(v.class()).or_default();
                let r = state.take_pool_reg(claims)?;
                claims.push(r);
                let phys = PhysReg::new(v.class(), r);
                let slot = slots[&v];
                let op = Opcode::SpillLoad;
                out.push(
                    Inst::new(
                        op,
                        vec![phys.into()],
                        vec![],
                        Some(MemAccess::new(
                            MemLoc::known(SPILL_REGION, slot),
                            AccessKind::Read,
                            8,
                        )),
                    )
                    .with_name(format!("reload {v}")),
                );
                spill_loads += 1;
                mapping.insert(v, phys);
            } else {
                return Err(AllocError::UndefinedUse { reg: v });
            }
        }

        // Registers whose holders die after this instruction become free
        // before the defs claim space. (Sorted release keeps the free
        // list — and therefore the whole allocation — deterministic;
        // HashMap iteration order must never leak into results.)
        for class in RegClass::ALL {
            let state = states.get_mut(&class).expect("state per class");
            let mut dead: Vec<VirtReg> = state
                .assigned
                .keys()
                .copied()
                .filter(|v| uses_info.dead_after(Reg::Virt(*v), idx + 1))
                .collect();
            dead.sort_unstable();
            for v in dead {
                state.release(v);
            }
        }

        // Allocate general registers for the defs, spilling on overflow.
        for &d in inst.defs() {
            let v = d.as_virt().ok_or(AllocError::PhysicalInput)?;
            let state = states.get_mut(&v.class()).expect("state per class");
            let r = if let Some(r) = state.free.pop() {
                r
            } else {
                // Belady eviction: farthest next use; values used by the
                // current instruction are only evicted as a last resort
                // (their operand value has already been read).
                let current_uses: Vec<VirtReg> = mapping
                    .keys()
                    .copied()
                    .filter(|u| u.class() == v.class())
                    .collect();
                // Deterministic Belady choice: farthest next use, ties
                // broken toward the lowest-numbered virtual register.
                let belady_key = |cand: &VirtReg| {
                    (
                        uses_info
                            .next_use_at_or_after(Reg::Virt(*cand), idx + 1)
                            .unwrap_or(usize::MAX),
                        std::cmp::Reverse(cand.index()),
                    )
                };
                let victim = state
                    .assigned
                    .keys()
                    .copied()
                    .filter(|cand| !current_uses.contains(cand))
                    .max_by_key(belady_key)
                    .or_else(|| state.assigned.keys().copied().max_by_key(belady_key))
                    .expect("no free register and nothing to evict");
                let victim_reg = state.assigned[&victim];
                // Store the victim unless its value already sits in its
                // slot (virtual registers are defined once, so a slot
                // written once stays valid).
                if !stored.get(&victim).copied().unwrap_or(false) {
                    let slot = slot_of(&mut slots, &mut next_slot, victim);
                    out.push(
                        Inst::new(
                            Opcode::SpillStore,
                            vec![],
                            vec![PhysReg::new(victim.class(), victim_reg).into()],
                            Some(MemAccess::new(
                                MemLoc::known(SPILL_REGION, slot),
                                AccessKind::Write,
                                8,
                            )),
                        )
                        .with_name(format!("spill {victim}")),
                    );
                    spill_stores += 1;
                    stored.insert(victim, true);
                }
                state.release(victim);
                state.free.pop().expect("eviction freed a register")
            };
            state.holder.insert(r, v);
            state.assigned.insert(v, r);
            debug_assert_eq!(state.class, v.class());
            mapping.insert(v, PhysReg::new(v.class(), r));
        }

        // Emit the instruction with operands rewritten.
        let mut rewritten = inst.clone();
        rewritten.map_regs(|r| match r {
            Reg::Virt(v) => Reg::Phys(mapping[&v]),
            phys => phys,
        });
        out.push(rewritten);
    }

    Ok(AllocResult {
        block: BasicBlock::new(block.name().to_owned(), out).with_frequency(block.frequency()),
        spill_loads,
        spill_stores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::BlockBuilder;

    fn all_physical(block: &BasicBlock) -> bool {
        block
            .insts()
            .iter()
            .all(|i| i.defs().iter().chain(i.uses()).all(|r| !r.is_virt()))
    }

    fn small_config() -> AllocatorConfig {
        AllocatorConfig {
            int_regs: 6,
            fp_regs: 6,
            pool_size: 2,
            policy: PoolPolicy::Fifo,
        }
    }

    /// A block holding `n` FP values live simultaneously before consuming
    /// them in reverse.
    fn pressure_block(n: usize) -> BasicBlock {
        let mut b = BlockBuilder::new("p");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let vals: Vec<_> = (0..n)
            .map(|k| b.load_region("l", region, base, Some(8 * k as i64)))
            .collect();
        let mut acc = vals[0];
        for &v in vals.iter().rev() {
            acc = b.fadd("a", acc, v);
        }
        b.store_region(region, acc, base, Some(10_000));
        b.finish()
    }

    #[test]
    fn low_pressure_inserts_no_spills() {
        let block = pressure_block(3);
        let r = allocate(&block, &small_config()).unwrap();
        assert_eq!(r.spill_count(), 0);
        assert_eq!(r.block.len(), block.len());
        assert!(all_physical(&r.block));
        assert_eq!(r.block.frequency(), block.frequency());
    }

    #[test]
    fn high_pressure_spills_and_reloads() {
        let block = pressure_block(12);
        let r = allocate(&block, &small_config()).unwrap();
        assert!(r.spill_stores > 0, "must store some values");
        assert!(
            r.spill_loads >= r.spill_stores,
            "every stored value is reloaded"
        );
        assert_eq!(r.block.len(), block.len() + r.spill_count());
        assert!(all_physical(&r.block));
        assert_eq!(
            r.block.spill_count(),
            r.spill_count(),
            "block agrees with result"
        );
    }

    #[test]
    fn spill_code_uses_the_spill_region() {
        let block = pressure_block(12);
        let r = allocate(&block, &small_config()).unwrap();
        for inst in r.block.insts().iter().filter(|i| i.is_spill()) {
            assert_eq!(inst.mem().unwrap().loc().region(), SPILL_REGION);
        }
    }

    #[test]
    fn values_survive_spilling() {
        // Semantic check: simulate def/use through memory. Every reload
        // must read a slot that was previously written, and every use of
        // a physical register must be preceded by a def of it (or a
        // reload into it).
        let block = pressure_block(14);
        let r = allocate(&block, &small_config()).unwrap();
        let mut written_slots = std::collections::HashSet::new();
        let mut defined: std::collections::HashSet<Reg> = std::collections::HashSet::new();
        for inst in r.block.insts() {
            for &u in inst.uses() {
                assert!(defined.contains(&u), "{u} used before def in {inst}");
            }
            if inst.opcode() == Opcode::SpillLoad {
                let slot = inst.mem().unwrap().loc().offset().unwrap();
                assert!(
                    written_slots.contains(&slot),
                    "reload of unwritten slot {slot}"
                );
            }
            if inst.opcode() == Opcode::SpillStore {
                written_slots.insert(inst.mem().unwrap().loc().offset().unwrap());
            }
            for &d in inst.defs() {
                defined.insert(d);
            }
        }
    }

    #[test]
    fn fifo_pool_rotates_reload_registers() {
        let block = pressure_block(16);
        let fifo = allocate(
            &block,
            &AllocatorConfig {
                policy: PoolPolicy::Fifo,
                ..small_config()
            },
        )
        .unwrap();
        let fixed = allocate(
            &block,
            &AllocatorConfig {
                policy: PoolPolicy::Fixed,
                ..small_config()
            },
        )
        .unwrap();
        let reload_regs = |r: &AllocResult| -> Vec<Reg> {
            r.block
                .insts()
                .iter()
                .filter(|i| i.opcode() == Opcode::SpillLoad)
                .map(|i| i.defs()[0])
                .collect()
        };
        let fifo_regs = reload_regs(&fifo);
        let fixed_regs = reload_regs(&fixed);
        assert!(!fifo_regs.is_empty());
        // FIFO spreads consecutive distinct reloads across registers;
        // fixed reuses the lowest register more often.
        let distinct = |regs: &[Reg]| regs.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct(&fifo_regs) >= distinct(&fixed_regs));
        let repeats = |regs: &[Reg]| regs.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(repeats(&fixed_regs) >= repeats(&fifo_regs));
    }

    #[test]
    fn allocation_is_deterministic() {
        // HashMap iteration order must never influence the output: two
        // allocations of the same block are bit-identical.
        let block = pressure_block(20);
        let a = allocate(&block, &small_config()).unwrap();
        let b = allocate(&block, &small_config()).unwrap();
        assert_eq!(a.block, b.block);
        assert_eq!(a.spill_loads, b.spill_loads);
        assert_eq!(a.spill_stores, b.spill_stores);
    }

    #[test]
    fn rejects_physical_inputs() {
        let phys: Reg = PhysReg::new(RegClass::Int, 1).into();
        let block = BasicBlock::new("t", vec![Inst::new(Opcode::Li, vec![phys], vec![], None)]);
        let err = allocate(&block, &small_config()).unwrap_err();
        assert_eq!(err, AllocError::PhysicalInput);
    }

    #[test]
    fn rejects_undefined_use() {
        use bsched_ir::VirtReg;
        let ghost: Reg = VirtReg::new(RegClass::Float, 99).into();
        let block = BasicBlock::new(
            "t",
            vec![Inst::new(Opcode::FAdd, vec![], vec![ghost, ghost], None)],
        );
        let err = allocate(&block, &small_config()).unwrap_err();
        assert!(matches!(err, AllocError::UndefinedUse { .. }));
    }

    #[test]
    fn error_display() {
        assert_eq!(
            AllocError::PhysicalInput.to_string(),
            "input block already uses physical registers"
        );
        let e = AllocError::PoolExhausted { needed: 3, have: 2 };
        assert!(e.to_string().contains("pool has 2"));
    }
}
