//! Post-allocation software register renaming (§4.1).
//!
//! The paper's fix for GCC's spill-register serialisation is the FIFO
//! pool; it also notes "an alternative approach would use software
//! register renaming after register allocation to better integrate spill
//! instructions". This pass implements that alternative: it walks the
//! allocated block and gives every definition a register drawn from a
//! FIFO queue of free registers — the whole-file generalisation of the
//! paper's FIFO spill pool — maximising the distance before any physical
//! name is reused and thereby breaking anti- and output dependences the
//! allocator introduced.
//!
//! Renaming is semantics-preserving on straight-line code: a definition
//! only takes a register whose previous value is dead (or whose final
//! read happens in the same instruction — reads precede writes), and all
//! uses up to the original register's next redefinition are rewritten.

use std::collections::{HashMap, VecDeque};

use bsched_ir::{BasicBlock, PhysReg, Reg, RegClass};

use crate::config::AllocatorConfig;

/// Computes, for each (instruction index, def register) pair, the last
/// instruction index that reads the defined value (the def index itself
/// when the value is never read).
fn def_range_ends(block: &BasicBlock) -> HashMap<(usize, Reg), usize> {
    let mut defs_of: HashMap<Reg, Vec<usize>> = HashMap::new();
    let mut uses_of: HashMap<Reg, Vec<usize>> = HashMap::new();
    for (idx, inst) in block.insts().iter().enumerate() {
        for &u in inst.uses() {
            uses_of.entry(u).or_default().push(idx);
        }
        for &d in inst.defs() {
            defs_of.entry(d).or_default().push(idx);
        }
    }
    let mut ends = HashMap::new();
    for (reg, defs) in &defs_of {
        let empty = Vec::new();
        let uses = uses_of.get(reg).unwrap_or(&empty);
        for (k, &def_idx) in defs.iter().enumerate() {
            let next_def = defs.get(k + 1).copied().unwrap_or(usize::MAX);
            // A use at `next_def`'s own index still reads THIS def:
            // reads precede writes within an instruction, so the
            // redefinition only takes effect after its uses.
            let end = uses
                .iter()
                .copied()
                .filter(|&u| u > def_idx && u <= next_def)
                .max()
                .unwrap_or(def_idx);
            ends.insert((def_idx, *reg), end);
        }
    }
    ends
}

/// Per-class renaming state: a FIFO of free registers plus the active
/// (renamed, last-use) ranges.
struct ClassRenamer {
    free: VecDeque<PhysReg>,
    active: Vec<(PhysReg, usize)>,
}

impl ClassRenamer {
    fn release_dead(&mut self, idx: usize) {
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].1 < idx {
                let (reg, _) = self.active.swap_remove(i);
                self.free.push_back(reg);
            } else {
                i += 1;
            }
        }
    }

    /// Takes the longest-free register; if none is free, steals an active
    /// register whose final use is the current instruction (safe: reads
    /// precede writes).
    fn take(&mut self, idx: usize, end: usize) -> PhysReg {
        let chosen = self.free.pop_front().unwrap_or_else(|| {
            let pos = self
                .active
                .iter()
                .position(|&(_, e)| e == idx)
                .expect("allocation guaranteed a free register at every def");
            self.active.swap_remove(pos).0
        });
        self.active.push((chosen, end));
        chosen
    }
}

/// Renames physical registers to minimise false dependences.
///
/// `config` bounds the register file: renaming only uses registers below
/// `config.regs_of(class)`. Registers live into the block (read before
/// any definition — e.g. incoming arguments) keep their names and are
/// never reused for other values.
///
/// # Panics
///
/// Panics if the block still contains virtual registers (renaming runs
/// after allocation).
#[must_use]
pub fn rename_registers(block: &BasicBlock, config: &AllocatorConfig) -> BasicBlock {
    let ends = def_range_ends(block);

    // Registers read before any def keep their identity.
    let mut seen_def: std::collections::HashSet<Reg> = std::collections::HashSet::new();
    let mut live_in: std::collections::HashSet<PhysReg> = std::collections::HashSet::new();
    for inst in block.insts() {
        for &u in inst.uses() {
            if !seen_def.contains(&u) {
                match u {
                    Reg::Phys(p) => {
                        live_in.insert(p);
                    }
                    Reg::Virt(_) => panic!("renaming runs after register allocation"),
                }
            }
        }
        for &d in inst.defs() {
            seen_def.insert(d);
        }
    }

    let mut states: HashMap<RegClass, ClassRenamer> = RegClass::ALL
        .into_iter()
        .map(|class| {
            let free: VecDeque<PhysReg> = (0..config.regs_of(class))
                .map(|i| PhysReg::new(class, i))
                .filter(|p| !live_in.contains(p))
                .collect();
            (
                class,
                ClassRenamer {
                    free,
                    active: Vec::new(),
                },
            )
        })
        .collect();

    let mut current: HashMap<Reg, PhysReg> = HashMap::new();
    let mut out = Vec::with_capacity(block.len());

    for (idx, inst) in block.insts().iter().enumerate() {
        for state in states.values_mut() {
            state.release_dead(idx);
        }
        // Rewrite uses through the active map.
        let uses: Vec<Reg> = inst
            .uses()
            .iter()
            .map(|&u| current.get(&u).map_or(u, |p| Reg::Phys(*p)))
            .collect();
        // Fresh FIFO names for the defs.
        let defs: Vec<Reg> = inst
            .defs()
            .iter()
            .map(|&d| {
                let Reg::Phys(original) = d else {
                    panic!("renaming runs after register allocation")
                };
                let end = ends[&(idx, d)];
                let state = states.get_mut(&original.class()).expect("state per class");
                let fresh = state.take(idx, end);
                current.insert(d, fresh);
                Reg::Phys(fresh)
            })
            .collect();
        let mut rebuilt = bsched_ir::Inst::new(inst.opcode(), defs, uses, inst.mem());
        if let Some(n) = inst.name() {
            rebuilt = rebuilt.with_name(n);
        }
        out.push(rebuilt);
    }
    BasicBlock::new(block.name().to_owned(), out).with_frequency(block.frequency())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate;
    use crate::config::PoolPolicy;
    use bsched_dag::{build_dag, AliasModel, DepKind};
    use bsched_ir::{BlockBuilder, Inst, Opcode};

    fn small_config() -> AllocatorConfig {
        AllocatorConfig {
            int_regs: 6,
            fp_regs: 6,
            pool_size: 2,
            policy: PoolPolicy::Fixed,
        }
    }

    fn pressure_block(n: usize) -> BasicBlock {
        let mut b = BlockBuilder::new("p");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let vals: Vec<_> = (0..n)
            .map(|k| b.load_region("l", region, base, Some(8 * k as i64)))
            .collect();
        let mut acc = vals[0];
        for &v in vals.iter().rev() {
            acc = b.fadd("a", acc, v);
        }
        b.store_region(region, acc, base, Some(10_000));
        b.finish()
    }

    #[test]
    fn renaming_preserves_dataflow() {
        let allocated = allocate(&pressure_block(14), &small_config())
            .unwrap()
            .block;
        let renamed = rename_registers(&allocated, &small_config());
        assert_eq!(renamed.len(), allocated.len());
        let mut defined = std::collections::HashSet::new();
        for inst in renamed.insts() {
            for u in inst.uses() {
                assert!(defined.contains(u), "{u} used before def");
            }
            for d in inst.defs() {
                defined.insert(*d);
            }
        }
        assert_eq!(renamed.frequency(), allocated.frequency());
    }

    #[test]
    fn renaming_breaks_targeted_false_dependence() {
        // r0 = li ; store r0 ; r0 = li ; store r0 — the second pair is
        // serialised behind the first by anti/output deps on r0. With a
        // second register available, renaming must break the serialisation.
        use bsched_ir::{AccessKind, MemAccess, MemLoc, PhysReg, RegionId};
        let r0: Reg = PhysReg::new(RegClass::Int, 0).into();
        let store = |off: i64, src: Reg| {
            Inst::new(
                Opcode::Sw,
                vec![],
                vec![src],
                Some(MemAccess::new(
                    MemLoc::known(RegionId::new(0), off),
                    AccessKind::Write,
                    8,
                )),
            )
        };
        let block = BasicBlock::new(
            "t",
            vec![
                Inst::new(Opcode::Li, vec![r0], vec![], None),
                store(0, r0),
                Inst::new(Opcode::Li, vec![r0], vec![], None),
                store(64, r0),
            ],
        );
        let before = build_dag(&block, AliasModel::Fortran);
        assert!(before
            .edges()
            .any(|e| matches!(e.kind, DepKind::Anti | DepKind::Output)));

        let renamed = rename_registers(&block, &small_config());
        let after = build_dag(&renamed, AliasModel::Fortran);
        assert!(
            after.edges().all(|e| e.kind == DepKind::True),
            "renaming should leave only true dependences"
        );
        // The two li/store pairs are now fully parallel.
        let closures = bsched_dag::Closures::compute(&after);
        assert!(closures.independent(bsched_ir::InstId::new(1), bsched_ir::InstId::new(2)));
    }

    #[test]
    fn renaming_spreads_reload_registers() {
        // Under the Fixed pool, reloads hammer the lowest pool register;
        // after renaming, the reload destinations are spread across the
        // file.
        let allocated = allocate(&pressure_block(16), &small_config())
            .unwrap()
            .block;
        let renamed = rename_registers(&allocated, &small_config());
        let distinct_reload_targets = |b: &BasicBlock| {
            b.insts()
                .iter()
                .filter(|i| i.opcode() == Opcode::SpillLoad)
                .map(|i| i.defs()[0])
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let before = distinct_reload_targets(&allocated);
        let after = distinct_reload_targets(&renamed);
        assert!(before >= 1);
        assert!(after > before, "reloads should spread: {before} -> {after}");
    }

    #[test]
    fn renaming_respects_register_file_bound() {
        let cfg = small_config();
        let allocated = allocate(&pressure_block(16), &cfg).unwrap().block;
        let renamed = rename_registers(&allocated, &cfg);
        for inst in renamed.insts() {
            for r in inst.defs().iter().chain(inst.uses()) {
                let p = r.as_phys().expect("physical");
                assert!(p.index() < cfg.regs_of(p.class()), "{p} out of file");
            }
        }
    }

    #[test]
    fn renaming_preserves_true_dependence_structure() {
        let cfg = small_config();
        let allocated = allocate(&pressure_block(12), &cfg).unwrap().block;
        let once = rename_registers(&allocated, &cfg);
        let twice = rename_registers(&once, &cfg);
        let true_edges = |b: &BasicBlock| {
            build_dag(b, AliasModel::Fortran)
                .edges()
                .filter(|e| e.kind == DepKind::True)
                .map(|e| (e.from, e.to))
                .collect::<std::collections::BTreeSet<_>>()
        };
        assert_eq!(true_edges(&allocated), true_edges(&once));
        assert_eq!(true_edges(&once), true_edges(&twice));
    }

    #[test]
    fn use_at_redefinition_index_keeps_the_old_value_live() {
        // r0 = li            (value A)
        // r1 = li            (value B — must NOT steal r0's name)
        // r0 = add r0, r1    (reads A at the same index that redefines r0)
        // store r0
        // The use of r0 at index 2 happens at the same index as r0's next
        // definition; reads precede writes, so value A is live through
        // index 2 and r0's name must not be handed to the li at index 1.
        use bsched_ir::{AccessKind, MemAccess, MemLoc, PhysReg, RegionId};
        let r0: Reg = PhysReg::new(RegClass::Int, 0).into();
        let r1: Reg = PhysReg::new(RegClass::Int, 1).into();
        let block = BasicBlock::new(
            "t",
            vec![
                Inst::new(Opcode::Li, vec![r0], vec![], None),
                Inst::new(Opcode::Li, vec![r1], vec![], None),
                Inst::new(Opcode::Add, vec![r0], vec![r0, r1], None),
                Inst::new(
                    Opcode::Sw,
                    vec![],
                    vec![r0],
                    Some(MemAccess::new(
                        MemLoc::known(RegionId::new(0), 0),
                        AccessKind::Write,
                        8,
                    )),
                ),
            ],
        );
        let renamed = rename_registers(&block, &small_config());
        let a = renamed.insts()[0].defs()[0];
        let b = renamed.insts()[1].defs()[0];
        assert_ne!(a, b, "value B clobbered value A's register");
        assert_eq!(renamed.insts()[2].uses()[0], a);
        assert_eq!(renamed.insts()[2].uses()[1], b);
        assert_eq!(renamed.insts()[3].uses()[0], renamed.insts()[2].defs()[0]);
    }

    #[test]
    fn live_in_registers_are_preserved() {
        use bsched_ir::PhysReg;
        // r3 is live-in (used before any def); it must keep its name and
        // never be clobbered by renaming.
        let r3: Reg = PhysReg::new(RegClass::Int, 3).into();
        let r0: Reg = PhysReg::new(RegClass::Int, 0).into();
        let block = BasicBlock::new(
            "t",
            vec![
                Inst::new(Opcode::Move, vec![r0], vec![r3], None),
                Inst::new(Opcode::Add, vec![r0], vec![r0, r3], None),
            ],
        );
        let renamed = rename_registers(&block, &small_config());
        assert_eq!(renamed.insts()[0].uses(), &[r3]);
        assert_eq!(renamed.insts()[1].uses()[1], r3);
        // No def targets r3.
        assert!(renamed
            .insts()
            .iter()
            .all(|i| i.defs().iter().all(|&d| d != r3)));
    }
}
