//! Register allocation with spill insertion (paper §4.1).
//!
//! GCC in the paper schedules twice: once before register allocation
//! (virtual registers, maximal freedom) and once after (to integrate the
//! allocator's spill code). This crate is the middle stage: a
//! linear-scan allocator over the first-pass schedule order, with
//! Belady-style eviction and — crucially for the paper's spill results —
//! a configurable **spill register pool**:
//!
//! * the paper enlarges GCC's pool by two and recycles registers in a
//!   **FIFO queue** ([`PoolPolicy::Fifo`]), so that consecutive reloads
//!   target different registers and the second scheduling pass is not
//!   serialised by anti-dependences between them;
//! * the unimproved baseline ([`PoolPolicy::Fixed`]) reuses the lowest
//!   pool register, reproducing the behaviour the paper fixes.
//!
//! Spill instructions are tagged with dedicated opcodes
//! ([`bsched_ir::Opcode::SpillLoad`]/[`SpillStore`]) so the experiment
//! harness can compute Table 4's spill percentages by inspection, using
//! the paper's definition: "a spill instruction is any instruction that
//! is inserted by the register allocator".
//!
//! [`SpillStore`]: bsched_ir::Opcode::SpillStore
//!
//! # Example
//!
//! ```
//! use bsched_regalloc::{allocate, AllocatorConfig};
//! use bsched_ir::BlockBuilder;
//!
//! # fn main() -> Result<(), bsched_regalloc::AllocError> {
//! let mut b = BlockBuilder::new("k");
//! let region = b.fresh_region();
//! let base = b.def_int("base");
//! let x = b.load_region("x", region, base, Some(0));
//! let y = b.fadd("y", x, x);
//! b.store_region(region, y, base, Some(8));
//! let result = allocate(&b.finish(), &AllocatorConfig::mips_default())?;
//! assert_eq!(result.spill_count(), 0); // plenty of registers here
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod config;
pub mod liveness;
pub mod rename;
pub mod usage_count;

pub use alloc::{allocate, AllocError, AllocResult, SPILL_REGION};
pub use config::{AllocatorConfig, PoolPolicy};
pub use liveness::UsePositions;
pub use rename::rename_registers;
pub use usage_count::allocate_usage_count;
