//! Use positions and next-use queries for straight-line code.

use std::collections::HashMap;

use bsched_ir::{BasicBlock, Reg};

/// Precomputed use positions of every register in a block, supporting the
/// Belady ("farthest next use") eviction heuristic.
#[derive(Debug, Clone)]
pub struct UsePositions {
    positions: HashMap<Reg, Vec<usize>>,
}

impl UsePositions {
    /// Scans `block` once, recording every instruction index at which each
    /// register is used (read).
    #[must_use]
    pub fn compute(block: &BasicBlock) -> Self {
        let mut positions: HashMap<Reg, Vec<usize>> = HashMap::new();
        for (idx, inst) in block.insts().iter().enumerate() {
            for &u in inst.uses() {
                positions.entry(u).or_default().push(idx);
            }
        }
        Self { positions }
    }

    /// The first use of `reg` at or after instruction index `from`, or
    /// `None` if the value is dead from there on.
    #[must_use]
    pub fn next_use_at_or_after(&self, reg: Reg, from: usize) -> Option<usize> {
        let uses = self.positions.get(&reg)?;
        match uses.binary_search(&from) {
            Ok(_) => Some(from),
            Err(i) => uses.get(i).copied(),
        }
    }

    /// `true` if `reg` is never read at or after index `from`.
    #[must_use]
    pub fn dead_after(&self, reg: Reg, from: usize) -> bool {
        self.next_use_at_or_after(reg, from).is_none()
    }

    /// Total number of uses of `reg`.
    #[must_use]
    pub fn use_count(&self, reg: Reg) -> usize {
        self.positions.get(&reg).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::BlockBuilder;

    #[test]
    fn next_use_queries() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base"); // 0
        let x = b.load("x", base, 0); // 1 uses base
        let y = b.fadd("y", x, x); // 2 uses x twice
        let _ = b.fadd("z", y, x); // 3 uses y, x
        let block = b.finish();
        let up = UsePositions::compute(&block);

        assert_eq!(up.next_use_at_or_after(base, 0), Some(1));
        assert_eq!(up.next_use_at_or_after(base, 2), None);
        assert!(up.dead_after(base, 2));
        assert_eq!(
            up.next_use_at_or_after(x, 2),
            Some(2),
            "at-or-after includes current"
        );
        assert_eq!(up.next_use_at_or_after(x, 3), Some(3));
        assert_eq!(up.next_use_at_or_after(x, 4), None);
        assert_eq!(up.use_count(x), 3);
        assert_eq!(up.use_count(y), 1);
    }

    #[test]
    fn unused_register_is_dead_everywhere() {
        let mut b = BlockBuilder::new("t");
        let v = b.fconst("v", 1.0);
        let block = b.finish();
        let up = UsePositions::compute(&block);
        assert!(up.dead_after(v, 0));
        assert_eq!(up.use_count(v), 0);
    }
}
