//! Register-file and spill-pool configuration.

use bsched_ir::RegClass;

use crate::alloc::AllocError;

/// How reload target registers are recycled from the spill pool (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolPolicy {
    /// FIFO queue ordering — the paper's improvement: pool registers are
    /// reused in rotation, maximising the distance between writes to the
    /// same register so the second scheduling pass sees fewer anti- and
    /// output dependences among reloads.
    #[default]
    Fifo,
    /// GCC's original behaviour: always take the lowest-numbered free
    /// pool register, so consecutive reloads hammer the same register and
    /// serialise under second-pass scheduling. Kept as an ablation.
    Fixed,
}

/// Register-file sizes and spill-pool shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocatorConfig {
    /// Integer registers available to the allocator (bases, addresses).
    pub int_regs: u32,
    /// Floating-point registers available to the allocator.
    pub fp_regs: u32,
    /// Registers per class reserved as the spill/reload pool. GCC used a
    /// small pool; the paper grows it by two.
    pub pool_size: u32,
    /// Reload-register recycling policy.
    pub policy: PoolPolicy,
}

impl AllocatorConfig {
    /// A MIPS-flavoured default: 12 integer and 16 FP allocatable
    /// registers (the rest of the architectural 32 are reserved for the
    /// ABI, constants and addressing, as in the paper's GCC setup), with
    /// a 4-register FIFO spill pool per class.
    #[must_use]
    pub fn mips_default() -> Self {
        Self {
            int_regs: 12,
            fp_regs: 16,
            pool_size: 4,
            policy: PoolPolicy::Fifo,
        }
    }

    /// Same file sizes with the original small fixed pool (pool grown
    /// back down by the paper's two and recycled lowest-first) — the
    /// unimproved GCC baseline for the ablation bench.
    #[must_use]
    pub fn gcc_original() -> Self {
        Self {
            int_regs: 12,
            fp_regs: 16,
            pool_size: 2,
            policy: PoolPolicy::Fixed,
        }
    }

    /// Total registers of `class`.
    #[must_use]
    pub fn regs_of(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Int => self.int_regs,
            RegClass::Float => self.fp_regs,
        }
    }

    /// Registers of `class` usable for ordinary allocation (file minus
    /// the reserved spill pool).
    #[must_use]
    pub fn general_regs_of(&self, class: RegClass) -> u32 {
        self.regs_of(class).saturating_sub(self.pool_size)
    }

    /// Checks that the configuration can allocate at all: every class
    /// needs at least two general registers, and the pool must hold at
    /// least two (an instruction may need two reloaded operands).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::InvalidConfig`] naming the violated rule.
    pub fn check(&self) -> Result<(), AllocError> {
        for class in RegClass::ALL {
            if self.general_regs_of(class) < 2 {
                return Err(AllocError::InvalidConfig {
                    detail: format!("class {class} needs at least two general registers"),
                });
            }
        }
        if self.pool_size < 2 {
            return Err(AllocError::InvalidConfig {
                detail: "spill pool must hold at least two registers".to_owned(),
            });
        }
        Ok(())
    }

    /// [`check`](Self::check) for callers that treat a bad configuration
    /// as a programming error.
    ///
    /// # Panics
    ///
    /// Panics with the violated rule.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        Self::mips_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        AllocatorConfig::mips_default().validate();
        AllocatorConfig::gcc_original().validate();
    }

    #[test]
    fn general_excludes_pool() {
        let c = AllocatorConfig::mips_default();
        assert_eq!(c.general_regs_of(RegClass::Float), 16 - 4);
        assert_eq!(c.general_regs_of(RegClass::Int), 12 - 4);
        assert_eq!(c.regs_of(RegClass::Int), 12);
    }

    #[test]
    #[should_panic(expected = "at least two general registers")]
    fn tiny_file_is_invalid() {
        AllocatorConfig {
            int_regs: 3,
            fp_regs: 16,
            pool_size: 2,
            policy: PoolPolicy::Fifo,
        }
        .validate();
    }

    #[test]
    fn check_returns_typed_errors() {
        assert!(AllocatorConfig::mips_default().check().is_ok());
        let tiny = AllocatorConfig {
            int_regs: 3,
            ..AllocatorConfig::mips_default()
        };
        let err = tiny.check().unwrap_err();
        assert!(matches!(&err, AllocError::InvalidConfig { detail }
            if detail.contains("general registers")));
        let no_pool = AllocatorConfig {
            pool_size: 1,
            int_regs: 12,
            fp_regs: 16,
            policy: PoolPolicy::Fifo,
        };
        assert!(
            matches!(no_pool.check(), Err(AllocError::InvalidConfig { detail })
            if detail.contains("spill pool"))
        );
    }

    #[test]
    fn default_policy_is_fifo() {
        assert_eq!(PoolPolicy::default(), PoolPolicy::Fifo);
        assert_eq!(AllocatorConfig::default(), AllocatorConfig::mips_default());
    }
}
