//! A 1992-vintage usage-count allocator (the GCC 2.x flavour).
//!
//! The paper's spill results (Table 4) are products of GCC 2.2.2's
//! allocator: priority allocation by usage count with spill-everywhere
//! semantics, reloading through a small pool of spill registers (§4.1).
//! Our primary allocator ([`crate::allocate`]) is a modern Belady-evicting
//! linear scan, which is *too good* to reproduce those spill patterns —
//! so this module recreates the historical behaviour:
//!
//! * live ranges are whole intervals `[def, last use]`;
//! * ranges are coloured in **use-count priority order**; a range that
//!   finds no free register is spilled *entirely* (no splitting);
//! * spilled values are stored once after their def and reloaded before
//!   **every** use, through the spill-register pool (FIFO or fixed).
//!
//! Comparing the two allocators is the `ablation/usage-count-*` bench
//! axis, and `BSCHED_ALLOC=usage` regenerates Table 4 with it.

use std::collections::HashMap;

use bsched_ir::{
    AccessKind, BasicBlock, Inst, MemAccess, MemLoc, Opcode, PhysReg, Reg, RegClass, VirtReg,
};

use crate::alloc::{AllocError, AllocResult, SPILL_REGION};
use crate::config::{AllocatorConfig, PoolPolicy};

#[derive(Debug, Clone, Copy)]
struct Range {
    def: usize,
    end: usize,
    uses: usize,
}

/// Allocates registers by usage-count priority with spill-everywhere
/// semantics (see module docs).
///
/// # Errors
///
/// Returns [`AllocError::PhysicalInput`] for non-virtual inputs and
/// [`AllocError::UndefinedUse`] for uses without a preceding def.
pub fn allocate_usage_count(
    block: &BasicBlock,
    config: &AllocatorConfig,
) -> Result<AllocResult, AllocError> {
    config.check()?;

    // Live ranges.
    let mut ranges: HashMap<VirtReg, Range> = HashMap::new();
    for (idx, inst) in block.insts().iter().enumerate() {
        for &u in inst.uses() {
            let v = u.as_virt().ok_or(AllocError::PhysicalInput)?;
            let r = ranges
                .get_mut(&v)
                .ok_or(AllocError::UndefinedUse { reg: v })?;
            r.end = idx;
            r.uses += 1;
        }
        for &d in inst.defs() {
            let v = d.as_virt().ok_or(AllocError::PhysicalInput)?;
            ranges.entry(v).or_insert(Range {
                def: idx,
                end: idx,
                uses: 0,
            });
        }
    }

    // Priority colouring: use count desc, then earlier def, then index
    // (fully deterministic).
    let mut order: Vec<(VirtReg, Range)> = ranges.iter().map(|(v, r)| (*v, *r)).collect();
    order.sort_unstable_by_key(|(v, r)| (std::cmp::Reverse(r.uses), r.def, v.index()));

    let mut assignment: HashMap<VirtReg, u32> = HashMap::new();
    let mut spilled: Vec<VirtReg> = Vec::new();
    // Occupancy per class per register: list of (start, end) intervals.
    let mut occupancy: HashMap<(RegClass, u32), Vec<(usize, usize)>> = HashMap::new();
    for (v, r) in &order {
        let general = config.general_regs_of(v.class());
        let slot = (0..general).find(|&reg| {
            occupancy
                .get(&(v.class(), reg))
                .is_none_or(|ivs| ivs.iter().all(|&(s, e)| r.end < s || e < r.def))
        });
        match slot {
            Some(reg) => {
                occupancy
                    .entry((v.class(), reg))
                    .or_default()
                    .push((r.def, r.end));
                assignment.insert(*v, reg);
            }
            None => spilled.push(*v),
        }
    }

    // Emission with spill-everywhere semantics.
    let spilled_set: std::collections::HashSet<VirtReg> = spilled.iter().copied().collect();
    let mut slots: HashMap<VirtReg, i64> = HashMap::new();
    let mut next_slot: i64 = 0;
    let mut pool_cursor: HashMap<RegClass, u32> = HashMap::new();
    let mut out: Vec<Inst> = Vec::with_capacity(block.len() + spilled.len() * 2);
    let mut spill_loads = 0usize;
    let mut spill_stores = 0usize;

    let mut take_pool = |class: RegClass, claimed: &[u32]| -> Result<u32, AllocError> {
        let general = config.general_regs_of(class);
        let pool = config.pool_size;
        match config.policy {
            PoolPolicy::Fifo => {
                let start = *pool_cursor.get(&class).unwrap_or(&0);
                for step in 0..pool {
                    let reg = general + (start + step) % pool;
                    if !claimed.contains(&reg) {
                        pool_cursor.insert(class, (start + step + 1) % pool);
                        return Ok(reg);
                    }
                }
                Err(AllocError::PoolExhausted {
                    needed: claimed.len() + 1,
                    have: pool as usize,
                })
            }
            PoolPolicy::Fixed => (0..pool)
                .map(|i| general + i)
                .find(|reg| !claimed.contains(reg))
                .ok_or(AllocError::PoolExhausted {
                    needed: claimed.len() + 1,
                    have: pool as usize,
                }),
        }
    };

    for inst in block.insts() {
        let mut mapping: HashMap<VirtReg, PhysReg> = HashMap::new();
        let mut claimed: HashMap<RegClass, Vec<u32>> = HashMap::new();

        // Reload spilled operands.
        for &u in inst.uses() {
            let v = u.as_virt().expect("checked above");
            if mapping.contains_key(&v) {
                continue;
            }
            if let Some(&reg) = assignment.get(&v) {
                mapping.insert(v, PhysReg::new(v.class(), reg));
            } else {
                let claims = claimed.entry(v.class()).or_default();
                let reg = take_pool(v.class(), claims)?;
                claims.push(reg);
                let phys = PhysReg::new(v.class(), reg);
                let slot = slots[&v];
                out.push(
                    Inst::new(
                        Opcode::SpillLoad,
                        vec![phys.into()],
                        vec![],
                        Some(MemAccess::new(
                            MemLoc::known(SPILL_REGION, slot),
                            AccessKind::Read,
                            8,
                        )),
                    )
                    .with_name(format!("reload {v}")),
                );
                spill_loads += 1;
                mapping.insert(v, phys);
            }
        }

        // Defs: assigned ranges get their colour; spilled defs borrow a
        // pool register and store immediately (spill-everywhere). A def
        // may reuse a register claimed by this instruction's reloads —
        // reads precede writes — so only other def claims are avoided.
        let mut stores_after: Vec<Inst> = Vec::new();
        let mut def_claims: HashMap<RegClass, Vec<u32>> = HashMap::new();
        for &d in inst.defs() {
            let v = d.as_virt().expect("checked above");
            if let Some(&reg) = assignment.get(&v) {
                mapping.insert(v, PhysReg::new(v.class(), reg));
            } else {
                let claims = def_claims.entry(v.class()).or_default();
                let reg = take_pool(v.class(), claims)?;
                claims.push(reg);
                let phys = PhysReg::new(v.class(), reg);
                let slot = *slots.entry(v).or_insert_with(|| {
                    let s = next_slot;
                    next_slot += 8;
                    s
                });
                stores_after.push(
                    Inst::new(
                        Opcode::SpillStore,
                        vec![],
                        vec![phys.into()],
                        Some(MemAccess::new(
                            MemLoc::known(SPILL_REGION, slot),
                            AccessKind::Write,
                            8,
                        )),
                    )
                    .with_name(format!("spill {v}")),
                );
                spill_stores += 1;
                mapping.insert(v, phys);
            }
        }

        let _ = &claimed;
        let mut rewritten = inst.clone();
        rewritten.map_regs(|r| match r {
            Reg::Virt(v) => Reg::Phys(mapping[&v]),
            phys => phys,
        });
        out.push(rewritten);
        out.append(&mut stores_after);
    }

    let _ = spilled_set;
    Ok(AllocResult {
        block: BasicBlock::new(block.name().to_owned(), out).with_frequency(block.frequency()),
        spill_loads,
        spill_stores,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::allocate;
    use bsched_ir::BlockBuilder;

    fn small_config() -> AllocatorConfig {
        AllocatorConfig {
            int_regs: 6,
            fp_regs: 6,
            pool_size: 2,
            policy: PoolPolicy::Fifo,
        }
    }

    fn pressure_block(n: usize) -> BasicBlock {
        let mut b = BlockBuilder::new("p");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let vals: Vec<_> = (0..n)
            .map(|k| b.load_region("l", region, base, Some(8 * k as i64)))
            .collect();
        let mut acc = vals[0];
        for &v in vals.iter().rev() {
            acc = b.fadd("a", acc, v);
        }
        b.store_region(region, acc, base, Some(10_000));
        b.finish()
    }

    #[test]
    fn low_pressure_matches_belady_spill_free() {
        let block = pressure_block(3);
        let r = allocate_usage_count(&block, &small_config()).unwrap();
        assert_eq!(r.spill_count(), 0);
        assert_eq!(r.block.len(), block.len());
    }

    #[test]
    fn dataflow_is_preserved_under_spilling() {
        let block = pressure_block(16);
        let r = allocate_usage_count(&block, &small_config()).unwrap();
        assert!(r.spill_count() > 0);
        assert_eq!(r.block.len(), block.len() + r.spill_count());
        let mut defined = std::collections::HashSet::new();
        let mut written_slots = std::collections::HashSet::new();
        for inst in r.block.insts() {
            for u in inst.uses() {
                assert!(!u.is_virt());
                assert!(defined.contains(u), "{u} used before def in {inst}");
            }
            if inst.opcode() == Opcode::SpillLoad {
                let slot = inst.mem().unwrap().loc().offset().unwrap();
                assert!(written_slots.contains(&slot), "reload of unwritten slot");
            }
            if inst.opcode() == Opcode::SpillStore {
                written_slots.insert(inst.mem().unwrap().loc().offset().unwrap());
            }
            for d in inst.defs() {
                defined.insert(*d);
            }
        }
    }

    #[test]
    fn spills_at_least_as_much_as_belady() {
        // The historical allocator never beats Belady eviction.
        for n in [8, 12, 16, 24] {
            let block = pressure_block(n);
            let old = allocate_usage_count(&block, &small_config()).unwrap();
            let modern = allocate(&block, &small_config()).unwrap();
            assert!(
                old.spill_count() >= modern.spill_count(),
                "n={n}: usage-count {} vs belady {}",
                old.spill_count(),
                modern.spill_count()
            );
        }
    }

    #[test]
    fn spill_everywhere_reloads_per_use() {
        // A spilled value used k times produces k reloads.
        let block = pressure_block(16);
        let r = allocate_usage_count(&block, &small_config()).unwrap();
        assert!(
            r.spill_loads >= r.spill_stores,
            "each store's value is reloaded at least once"
        );
    }

    #[test]
    fn is_deterministic() {
        let block = pressure_block(20);
        let a = allocate_usage_count(&block, &small_config()).unwrap();
        let b = allocate_usage_count(&block, &small_config()).unwrap();
        assert_eq!(a.block, b.block);
    }

    #[test]
    fn rejects_undefined_use() {
        use bsched_ir::VirtReg;
        let ghost: Reg = VirtReg::new(RegClass::Float, 99).into();
        let block = BasicBlock::new(
            "t",
            vec![Inst::new(Opcode::FAdd, vec![], vec![ghost, ghost], None)],
        );
        assert!(matches!(
            allocate_usage_count(&block, &small_config()),
            Err(AllocError::UndefinedUse { .. })
        ));
    }
}
