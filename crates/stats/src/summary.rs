//! Streaming summary statistics.

use std::fmt;

/// Incremental mean / variance / extrema accumulator (Welford's algorithm).
///
/// Used throughout the experiment harness to aggregate per-run simulator
/// results without storing every sample.
///
/// # Example
///
/// ```
/// use bsched_stats::Summary;
/// let s: bsched_stats::Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_variance(), 4.0);
/// assert_eq!(s.min(), Some(2.0));
/// assert_eq!(s.max(), Some(9.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations seen so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`); 0.0 with fewer than one sample.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`); 0.0 with fewer than two samples.
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.add(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count,
            self.mean,
            self.std_dev(),
            self.min().unwrap_or(f64::NAN),
            self.max().unwrap_or(f64::NAN)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn single_value() {
        let mut s = Summary::new();
        s.add(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.min(), Some(3.5));
        assert_eq!(s.max(), Some(3.5));
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn known_variance() {
        let s: Summary = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert!((s.population_variance() - 4.0).abs() < 1e-12);
        assert!((s.sample_variance() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let all: Summary = data.iter().copied().collect();
        let left: Summary = data[..33].iter().copied().collect();
        let mut merged = left;
        let right: Summary = data[33..].iter().copied().collect();
        merged.merge(&right);
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-10);
        assert!((merged.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn display_nonempty() {
        let s: Summary = [1.0].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("n=1"));
    }
}
