//! Paired percentage-improvement statistics.
//!
//! Every results table in the paper reports the percentage improvement in
//! execution time of the balanced scheduler over the traditional scheduler.
//! Improvements are computed on *paired* bootstrap means (§4.3): the i-th
//! balanced resampled runtime is paired with the i-th traditional resampled
//! runtime, the percentage is computed per pair, and the 95% interval is
//! extracted from the sorted percentages.

use crate::bootstrap::{percentile_interval, ConfidenceInterval};

/// Result of a paired improvement computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Improvement {
    /// Mean percentage improvement (positive ⇒ balanced is faster).
    pub mean_percent: f64,
    /// 95% confidence interval of the percentage improvement.
    pub interval: ConfidenceInterval,
}

impl std::fmt::Display for Improvement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:+.1}% {}", self.mean_percent, self.interval)
    }
}

/// Percentage improvement of `new` over `old` execution time.
///
/// Positive when `new` is faster. Follows the paper's convention:
/// `(old - new) / old * 100`.
///
/// # Panics
///
/// Panics if `old` is not strictly positive — runtimes are cycle counts.
#[must_use]
pub fn percent_improvement(old: f64, new: f64) -> f64 {
    assert!(old > 0.0, "baseline runtime must be positive");
    (old - new) / old * 100.0
}

/// Pairs two equal-length vectors of bootstrap mean runtimes and returns the
/// mean percentage improvement plus its 95% confidence interval.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn paired_improvement(traditional: &[f64], balanced: &[f64]) -> Improvement {
    assert_eq!(
        traditional.len(),
        balanced.len(),
        "paired improvement requires equally many resampled means"
    );
    assert!(
        !traditional.is_empty(),
        "cannot compute improvement of empty samples"
    );
    let percents: Vec<f64> = traditional
        .iter()
        .zip(balanced)
        .map(|(&t, &b)| percent_improvement(t, b))
        .collect();
    let mean = percents.iter().sum::<f64>() / percents.len() as f64;
    Improvement {
        mean_percent: mean,
        interval: percentile_interval(&percents, 0.95),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_improvement_signs() {
        assert_eq!(percent_improvement(100.0, 90.0), 10.0);
        assert_eq!(percent_improvement(100.0, 110.0), -10.0);
        assert_eq!(percent_improvement(100.0, 100.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "baseline runtime must be positive")]
    fn zero_baseline_panics() {
        let _ = percent_improvement(0.0, 1.0);
    }

    #[test]
    fn paired_improvement_mean() {
        let t = vec![100.0, 200.0, 100.0];
        let b = vec![90.0, 180.0, 95.0];
        let imp = paired_improvement(&t, &b);
        assert!((imp.mean_percent - (10.0 + 10.0 + 5.0) / 3.0).abs() < 1e-12);
        assert!(imp.interval.low <= imp.mean_percent);
        assert!(imp.interval.high >= imp.mean_percent);
    }

    #[test]
    fn identical_schedulers_are_zero() {
        let t = vec![100.0; 50];
        let imp = paired_improvement(&t, &t);
        assert_eq!(imp.mean_percent, 0.0);
        assert_eq!(imp.interval.width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "equally many")]
    fn mismatched_lengths_panic() {
        let _ = paired_improvement(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn display_formats() {
        let imp = paired_improvement(&[100.0], &[90.0]);
        assert!(imp.to_string().starts_with("+10.0%"));
    }
}
