//! Deterministic pseudo-random number generation.
//!
//! Every experiment in this repository must be exactly reproducible: the
//! paper's results tables are averages over 30 simulator runs per basic
//! block, and re-running a table binary must print the same rows every time.
//! To guarantee that across platforms and dependency upgrades, the
//! generators here are self-contained:
//!
//! * [`SplitMix64`] — the 64-bit finaliser-based generator from Steele,
//!   Lea & Flood, used for seeding and stream splitting;
//! * [`Pcg32`] — O'Neill's PCG-XSH-RR 64/32, the workhorse generator used
//!   by all simulators and workload generators.
//!
//! Both are tiny, fast, and pass standard statistical test batteries far
//! beyond the demands of latency sampling.

/// SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014).
///
/// Primarily used to expand a single user seed into the state required by
/// other generators and to derive independent streams.
///
/// # Example
///
/// ```
/// use bsched_stats::SplitMix64;
/// let mut sm = SplitMix64::new(7);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// // Restarting from the same seed replays the sequence.
/// let mut sm2 = SplitMix64::new(7);
/// assert_eq!(sm2.next_u64(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. All seeds, including 0, are valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 generator (O'Neill, 2014).
///
/// The default generator for all stochastic simulation in this repository.
/// It is deterministic, seedable, cheaply copyable, and supports deriving
/// statistically independent substreams via [`Pcg32::split`], which the
/// experiment harness uses to give each (block, scheduler, run) triple its
/// own stream without correlation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from an explicit state and stream selector.
    ///
    /// The stream selector is forced odd internally, as PCG requires.
    #[must_use]
    pub fn new(state: u64, stream: u64) -> Self {
        let inc = (stream << 1) | 1;
        let mut rng = Self { state: 0, inc };
        // Standard PCG initialisation dance.
        rng.next_u32();
        rng.state = rng.state.wrapping_add(state);
        rng.next_u32();
        rng
    }

    /// Creates a generator from a single 64-bit seed.
    ///
    /// State and stream are derived through [`SplitMix64`], so nearby seeds
    /// produce unrelated sequences.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let state = sm.next_u64();
        let stream = sm.next_u64();
        Self::new(state, stream)
    }

    /// Derives an independent generator for substream `index`.
    ///
    /// Splitting is deterministic: the same parent state and index always
    /// yield the same child. The parent is not advanced.
    #[must_use]
    pub fn split(&self, index: u64) -> Self {
        let mut sm = SplitMix64::new(
            self.state ^ self.inc.rotate_left(17) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let state = sm.next_u64();
        let stream = sm.next_u64();
        Self::new(state, stream)
    }

    /// Returns the next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit output (two 32-bit draws).
    pub fn next_u64(&mut self) -> u64 {
        let hi = u64::from(self.next_u32());
        let lo = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// Returns a uniformly distributed `u32` in `0..bound` using Lemire's
    /// unbiased multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "bound must be positive");
        let mut x = self.next_u32();
        let mut m = u64::from(x) * u64::from(bound);
        let mut l = m as u32;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u32();
                m = u64::from(x) * u64::from(bound);
                l = m as u32;
            }
        }
        (m >> 32) as u32
    }

    /// Returns a uniformly distributed `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero or exceeds `u32::MAX` (all uses in this
    /// repository index sample vectors far smaller than that).
    pub fn next_index(&mut self, bound: usize) -> usize {
        assert!(bound <= u32::MAX as usize, "bound too large");
        self.next_below(bound as u32) as usize
    }

    /// Returns a double-precision float uniformly distributed in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// Probabilities outside `[0, 1]` are clamped.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// Returns a standard-normal deviate via Marsaglia's polar method.
    pub fn next_standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the public-domain C implementation with
        // seed 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn pcg_is_deterministic() {
        let mut a = Pcg32::seed_from_u64(99);
        let mut b = Pcg32::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(
            same < 4,
            "streams should be nearly disjoint, {same} collisions"
        );
    }

    #[test]
    fn split_children_are_independent_and_stable() {
        let parent = Pcg32::seed_from_u64(7);
        let mut c0 = parent.split(0);
        let mut c0_again = parent.split(0);
        let mut c1 = parent.split(1);
        assert_eq!(c0.next_u64(), c0_again.next_u64());
        let x = c0.next_u64();
        let y = c1.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Pcg32::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn next_f64_is_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = Pcg32::seed_from_u64(13);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_matches_probability() {
        let mut rng = Pcg32::seed_from_u64(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.8)).count();
        let rate = hits as f64 / f64::from(n);
        assert!((rate - 0.8).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Pcg32::seed_from_u64(19);
        assert!(!(0..1000).any(|_| rng.bernoulli(0.0)));
        assert!((0..1000).all(|_| rng.bernoulli(1.0)));
        // Out-of-range probabilities are clamped, not UB.
        assert!((0..10).all(|_| rng.bernoulli(2.0)));
        assert!(!(0..10).any(|_| rng.bernoulli(-1.0)));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed_from_u64(23);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn next_index_bounds() {
        let mut rng = Pcg32::seed_from_u64(29);
        for _ in 0..100 {
            assert!(rng.next_index(3) < 3);
            assert_eq!(rng.next_index(1), 0);
        }
    }
}
