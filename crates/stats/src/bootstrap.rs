//! Efron bootstrap resampling (§4.3 of the paper).
//!
//! The paper reduces simulation cost by running each basic block 30 times
//! and then *bootstrapping*: repeatedly drawing 30 samples with replacement
//! from those runtimes and averaging, until 100 resampled means exist.
//! Confidence intervals are read off the sorted resampled statistics.

use crate::rng::Pcg32;

/// A two-sided percentile confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound of the interval.
    pub low: f64,
    /// Upper bound of the interval.
    pub high: f64,
    /// Confidence level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Returns `true` if `x` lies inside the closed interval.
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.low && x <= self.high
    }

    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.high - self.low
    }
}

impl std::fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.3}, {:.3}] @ {:.0}%",
            self.low,
            self.high,
            self.level * 100.0
        )
    }
}

/// Draws `resamples` bootstrap means from `samples`.
///
/// Each resampled mean averages `samples.len()` draws *with replacement*,
/// exactly as described in §4.3 (30 runtimes → 100 resampled means in the
/// paper's configuration).
///
/// # Panics
///
/// Panics if `samples` is empty.
#[must_use]
pub fn bootstrap_means(samples: &[f64], resamples: usize, rng: &mut Pcg32) -> Vec<f64> {
    assert!(!samples.is_empty(), "cannot bootstrap an empty sample set");
    let n = samples.len();
    (0..resamples)
        .map(|_| {
            let sum: f64 = (0..n).map(|_| samples[rng.next_index(n)]).sum();
            sum / n as f64
        })
        .collect()
}

/// Extracts a two-sided percentile interval from bootstrap statistics.
///
/// Sorts a copy of `stats` and returns the empirical `(1-level)/2` and
/// `(1+level)/2` quantiles — the paper's "after sorting, a 95% confidence
/// interval is directly extracted".
///
/// # Panics
///
/// Panics if `stats` is empty or `level` is outside `(0, 1)`.
#[must_use]
pub fn percentile_interval(stats: &[f64], level: f64) -> ConfidenceInterval {
    assert!(!stats.is_empty(), "cannot take percentiles of an empty set");
    assert!(level > 0.0 && level < 1.0, "level must be in (0, 1)");
    let mut sorted: Vec<f64> = stats.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("bootstrap statistics must not be NaN")
    });
    let lo_q = (1.0 - level) / 2.0;
    let hi_q = 1.0 - lo_q;
    ConfidenceInterval {
        low: quantile_sorted(&sorted, lo_q),
        high: quantile_sorted(&sorted, hi_q),
        level,
    }
}

/// Linear-interpolation quantile of an already-sorted slice.
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let idx = pos.floor() as usize;
    let frac = pos - idx as f64;
    if idx + 1 < n {
        sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac
    } else {
        sorted[n - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_means_of_constant_are_constant() {
        let mut rng = Pcg32::seed_from_u64(1);
        let means = bootstrap_means(&[5.0; 30], 100, &mut rng);
        assert_eq!(means.len(), 100);
        assert!(means.iter().all(|&m| (m - 5.0).abs() < 1e-12));
    }

    #[test]
    fn bootstrap_means_stay_in_hull() {
        let mut rng = Pcg32::seed_from_u64(2);
        let samples = [1.0, 2.0, 3.0, 10.0];
        let means = bootstrap_means(&samples, 500, &mut rng);
        assert!(means.iter().all(|&m| (1.0..=10.0).contains(&m)));
    }

    #[test]
    fn bootstrap_mean_of_means_close_to_sample_mean() {
        let mut rng = Pcg32::seed_from_u64(3);
        let samples: Vec<f64> = (0..30).map(|i| 100.0 + f64::from(i)).collect();
        let sample_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let means = bootstrap_means(&samples, 2000, &mut rng);
        let grand = means.iter().sum::<f64>() / means.len() as f64;
        assert!(
            (grand - sample_mean).abs() < 0.5,
            "grand {grand} vs {sample_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "empty sample set")]
    fn bootstrap_empty_panics() {
        let mut rng = Pcg32::seed_from_u64(4);
        let _ = bootstrap_means(&[], 10, &mut rng);
    }

    #[test]
    fn percentile_interval_orders_bounds() {
        let stats: Vec<f64> = (0..100).map(f64::from).collect();
        let ci = percentile_interval(&stats, 0.95);
        assert!(ci.low < ci.high);
        assert!(ci.contains(50.0));
        assert!(!ci.contains(-1.0));
        assert!((ci.low - 2.475).abs() < 1e-9);
        assert!((ci.high - 96.525).abs() < 1e-9);
    }

    #[test]
    fn percentile_interval_single_value() {
        let ci = percentile_interval(&[7.0], 0.95);
        assert_eq!(ci.low, 7.0);
        assert_eq!(ci.high, 7.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "level must be in (0, 1)")]
    fn percentile_bad_level_panics() {
        let _ = percentile_interval(&[1.0, 2.0], 1.0);
    }

    #[test]
    fn interval_covers_true_mean_usually() {
        // Coverage sanity check: with normal-ish data the 95% interval for
        // the mean should contain the true mean in the large majority of
        // trials.
        let mut rng = Pcg32::seed_from_u64(42);
        let mut covered = 0;
        let trials = 200;
        for t in 0..trials {
            let mut run_rng = rng.split(t);
            let samples: Vec<f64> = (0..30)
                .map(|_| 10.0 + run_rng.next_standard_normal())
                .collect();
            let means = bootstrap_means(&samples, 200, &mut rng);
            if percentile_interval(&means, 0.95).contains(10.0) {
                covered += 1;
            }
        }
        assert!(covered > trials * 8 / 10, "coverage {covered}/{trials}");
    }

    #[test]
    fn display_formats() {
        let ci = ConfidenceInterval {
            low: 1.0,
            high: 2.0,
            level: 0.95,
        };
        assert_eq!(ci.to_string(), "[1.000, 2.000] @ 95%");
    }
}
