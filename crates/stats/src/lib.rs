//! Statistics substrate for the balanced-scheduling experiments.
//!
//! The paper (§4.3) evaluates schedules by running each basic block through
//! an instruction-level simulator **30 times** with fresh random latency
//! samples, then derives confidence intervals for the percentage improvement
//! with an Efron **bootstrap**: from the 30 sample runtimes it draws 30
//! samples with replacement to form one resampled mean, repeats this until
//! **100 sample means** exist, scales by profiled block frequency, sums over
//! blocks, pairs the balanced means with the traditional means and extracts a
//! 95% confidence interval after sorting.
//!
//! This crate provides exactly that machinery:
//!
//! * [`rng`] — a small, fully deterministic, splittable random number
//!   generator ([`Pcg32`]) so every experiment in the repository is
//!   bit-reproducible without an external dependency;
//! * [`summary`] — mean / variance / min / max accumulators;
//! * [`bootstrap`] — resampled means and percentile confidence intervals;
//! * [`improvement`] — paired percentage-improvement computation used by
//!   every results table.
//!
//! # Example
//!
//! ```
//! use bsched_stats::{Pcg32, bootstrap::bootstrap_means, improvement::paired_improvement};
//!
//! let mut rng = Pcg32::seed_from_u64(42);
//! let traditional = vec![110.0, 112.0, 108.0, 111.0, 109.0];
//! let balanced = vec![100.0, 101.0, 99.0, 100.5, 99.5];
//! let t_means = bootstrap_means(&traditional, 100, &mut rng);
//! let b_means = bootstrap_means(&balanced, 100, &mut rng);
//! let imp = paired_improvement(&t_means, &b_means);
//! assert!(imp.mean_percent > 0.0); // balanced is faster
//! ```

#![warn(missing_docs)]

pub mod bootstrap;
pub mod improvement;
pub mod rng;
pub mod summary;

pub use bootstrap::{bootstrap_means, percentile_interval, ConfidenceInterval};
pub use improvement::{paired_improvement, percent_improvement, Improvement};
pub use rng::{Pcg32, SplitMix64};
pub use summary::Summary;
