//! Connected components of the independence subgraph.
//!
//! Fig. 6 line 4: after removing `Pred(i) ∪ Succ(i)`, the remaining nodes
//! fall into connected components (connectivity taken over the *undirected*
//! dependence edges restricted to the remaining node set). Each component
//! is an independent pool of instructions that could hide some load's
//! latency.

use bsched_ir::InstId;

use crate::bitset::BitSet;
use crate::dag::CodeDag;

/// Computes the connected components of `dag` restricted to `keep`.
///
/// Returns each component as a sorted vector of instruction ids. Nodes not
/// in `keep` are ignored entirely — edges through removed nodes do *not*
/// connect their endpoints (the paper removes the nodes, and with them
/// their incident edges).
///
/// Components are returned in order of their smallest member.
#[must_use]
pub fn connected_components(dag: &CodeDag, keep: &BitSet) -> Vec<Vec<InstId>> {
    let n = dag.len();
    let mut visited = BitSet::new(n);
    let mut components = Vec::new();
    let mut stack = Vec::new();

    for start in keep.iter() {
        if visited.contains(start) {
            continue;
        }
        let mut comp = Vec::new();
        visited.insert(start);
        stack.push(start);
        while let Some(v) = stack.pop() {
            comp.push(InstId::from_usize(v));
            let id = InstId::from_usize(v);
            let neighbours = dag
                .succs(id)
                .iter()
                .map(|&(s, _)| s.index())
                .chain(dag.preds(id).iter().map(|&(p, _)| p.index()));
            for u in neighbours {
                if keep.contains(u) && !visited.contains(u) {
                    visited.insert(u);
                    stack.push(u);
                }
            }
        }
        comp.sort_unstable();
        components.push(comp);
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closure::Closures;
    use crate::dag::DepKind;
    use bsched_ir::{BasicBlock, Inst, Opcode};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    fn dag_with_edges(n: usize, edges: &[(u32, u32)]) -> CodeDag {
        let insts = (0..n)
            .map(|_| Inst::new(Opcode::FMove, vec![], vec![], None))
            .collect();
        let block = BasicBlock::new("t", insts);
        let mut dag = CodeDag::new(&block);
        for &(a, b) in edges {
            dag.add_edge(id(a), id(b), DepKind::True);
        }
        dag
    }

    fn keep_all(n: usize) -> BitSet {
        let mut s = BitSet::new(n);
        s.fill();
        s
    }

    #[test]
    fn edgeless_graph_has_singleton_components() {
        let dag = dag_with_edges(3, &[]);
        let comps = connected_components(&dag, &keep_all(3));
        assert_eq!(comps, vec![vec![id(0)], vec![id(1)], vec![id(2)]]);
    }

    #[test]
    fn chain_is_one_component() {
        let dag = dag_with_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let comps = connected_components(&dag, &keep_all(4));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![id(0), id(1), id(2), id(3)]);
    }

    #[test]
    fn removing_cut_node_splits_component() {
        // 0 - 1 - 2 as undirected path; removing 1 separates 0 and 2.
        let dag = dag_with_edges(3, &[(0, 1), (1, 2)]);
        let mut keep = keep_all(3);
        keep.remove(1);
        let comps = connected_components(&dag, &keep);
        assert_eq!(comps, vec![vec![id(0)], vec![id(2)]]);
    }

    #[test]
    fn undirected_connectivity_joins_siblings() {
        // 0 -> 1, 0 -> 2: 1 and 2 connect through 0 when 0 is kept.
        let dag = dag_with_edges(3, &[(0, 1), (0, 2)]);
        let comps = connected_components(&dag, &keep_all(3));
        assert_eq!(comps.len(), 1);
        let mut keep = keep_all(3);
        keep.remove(0);
        let comps = connected_components(&dag, &keep);
        assert_eq!(comps.len(), 2, "siblings split once parent is removed");
    }

    #[test]
    fn empty_keep_set_yields_no_components() {
        let dag = dag_with_edges(3, &[(0, 1)]);
        let comps = connected_components(&dag, &BitSet::new(3));
        assert!(comps.is_empty());
    }

    #[test]
    fn paper_figure7_components_for_x1() {
        // Reconstruction of Fig. 7(a). Nodes (program order):
        // 0:L1  1:L2  2:L3  3:L4  4:L5  5:L6  6:X1  7:X2  8:X3  9:X4
        //
        // Dependences chosen to match Table 1's closure/component structure
        // when i = X1 (node 6):
        //   L2 -> X1 (X1's only predecessor)
        //   L3 -> X2, X2 -> L4 ... (the L3..L6/X2..X4 component with a
        //   longest load path of 3: L3 -> X2 -> L4 -> L5, plus L6 parallel
        //   to L5 and X3, X4 hanging off X2)
        // and L1 isolated.
        let dag = dag_with_edges(
            10,
            &[
                (1, 6), // L2 -> X1
                (2, 7), // L3 -> X2
            ],
        );
        // The exact Fig. 7 graph is asserted in bsched-core's balanced
        // tests where program order can be laid out properly; here we only
        // check the component split around X1.
        let closures = Closures::compute(&dag);
        let keep = closures.independent_of(id(6));
        let comps = connected_components(&dag, &keep);
        // L2 (node 1) must be excluded; L1 (0) isolated; {L3, X2} joined.
        assert!(comps.iter().all(|c| !c.contains(&id(1))));
        assert!(comps.contains(&vec![id(0)]));
        assert!(comps.contains(&vec![id(2), id(7)]));
        assert_eq!(comps.len(), 7);
    }
}
