//! Structural analyses of code DAGs: critical paths, ASAP/ALAP times,
//! slack, and block-level parallelism statistics.
//!
//! These are diagnostic tools around the scheduling core: the paper
//! reasons about schedules in terms of the "amount of load level
//! parallelism that a program can support" (§1), and these functions
//! quantify that per block — the `workload_stats` binary uses them to
//! document the benchmark stand-ins' profiles.

use bsched_ir::InstId;

use crate::dag::CodeDag;

/// ASAP (as-soon-as-possible) issue slots under unit latencies: the
/// earliest slot each instruction could occupy given unlimited issue
/// width. `asap[i]` = longest path (in edges) from any root to `i`.
#[must_use]
pub fn asap_levels(dag: &CodeDag) -> Vec<u32> {
    let n = dag.len();
    let mut asap = vec![0u32; n];
    for v in 0..n {
        let id = InstId::from_usize(v);
        asap[v] = dag
            .preds(id)
            .iter()
            .map(|&(p, _)| asap[p.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    asap
}

/// ALAP (as-late-as-possible) issue slots under unit latencies, aligned
/// so the latest instruction sits at `critical_path_length(dag) - 1`.
#[must_use]
pub fn alap_levels(dag: &CodeDag) -> Vec<u32> {
    let n = dag.len();
    if n == 0 {
        return Vec::new();
    }
    let depth = critical_path_length(dag);
    let mut alap = vec![depth - 1; n];
    for v in (0..n).rev() {
        let id = InstId::from_usize(v);
        if let Some(min_succ) = dag.succs(id).iter().map(|&(s, _)| alap[s.index()]).min() {
            alap[v] = min_succ - 1;
        }
    }
    alap
}

/// Length (in nodes) of the longest dependence chain — the minimum
/// schedule length on an infinitely wide machine with unit latencies.
#[must_use]
pub fn critical_path_length(dag: &CodeDag) -> u32 {
    asap_levels(dag).iter().map(|&l| l + 1).max().unwrap_or(0)
}

/// Per-instruction slack: `alap − asap`. Zero-slack instructions are on
/// a critical path; large slack is exactly the freedom balanced
/// scheduling redistributes toward loads.
#[must_use]
pub fn slack(dag: &CodeDag) -> Vec<u32> {
    asap_levels(dag)
        .iter()
        .zip(alap_levels(dag))
        .map(|(a, l)| l - a)
        .collect()
}

/// Summary statistics of one block's parallelism profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DagProfile {
    /// Node count.
    pub instructions: usize,
    /// Load count.
    pub loads: usize,
    /// Edge count (collapsed).
    pub edges: usize,
    /// Longest dependence chain, in nodes.
    pub critical_path: u32,
    /// `instructions / critical_path` — average width available.
    pub parallelism: f64,
    /// Maximum number of loads on any single path (whole-DAG `Chances`).
    pub max_serial_loads: u32,
}

impl DagProfile {
    /// Computes the profile of `dag`.
    #[must_use]
    pub fn of(dag: &CodeDag) -> Self {
        let critical_path = critical_path_length(dag);
        let all: Vec<InstId> = dag.node_ids().collect();
        Self {
            instructions: dag.len(),
            loads: dag.load_ids().len(),
            edges: dag.edge_count(),
            critical_path,
            parallelism: if critical_path == 0 {
                0.0
            } else {
                dag.len() as f64 / f64::from(critical_path)
            },
            max_serial_loads: crate::paths::chances_exact(dag, &all),
        }
    }
}

impl std::fmt::Display for DagProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} instrs ({} loads, {} edges), depth {}, width {:.2}, {} serial loads",
            self.instructions,
            self.loads,
            self.edges,
            self.critical_path,
            self.parallelism,
            self.max_serial_loads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DepKind;
    use bsched_ir::{BasicBlock, Inst, Opcode};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    fn dag_with_edges(n: usize, edges: &[(u32, u32)]) -> CodeDag {
        let insts = (0..n)
            .map(|_| Inst::new(Opcode::FMove, vec![], vec![], None))
            .collect();
        let block = BasicBlock::new("t", insts);
        let mut dag = CodeDag::new(&block);
        for &(a, b) in edges {
            dag.add_edge(id(a), id(b), DepKind::True);
        }
        dag
    }

    #[test]
    fn chain_levels() {
        let dag = dag_with_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(asap_levels(&dag), vec![0, 1, 2, 3]);
        assert_eq!(alap_levels(&dag), vec![0, 1, 2, 3]);
        assert_eq!(critical_path_length(&dag), 4);
        assert_eq!(slack(&dag), vec![0; 4], "a chain has no slack");
    }

    #[test]
    fn diamond_slack() {
        // 0 -> {1, 2} -> 3, plus a free node 4.
        let dag = dag_with_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(critical_path_length(&dag), 3);
        assert_eq!(asap_levels(&dag), vec![0, 1, 1, 2, 0]);
        assert_eq!(alap_levels(&dag), vec![0, 1, 1, 2, 2]);
        assert_eq!(
            slack(&dag),
            vec![0, 0, 0, 0, 2],
            "only the free node has slack"
        );
    }

    #[test]
    fn empty_dag() {
        let dag = dag_with_edges(0, &[]);
        assert_eq!(critical_path_length(&dag), 0);
        assert!(asap_levels(&dag).is_empty());
        assert!(alap_levels(&dag).is_empty());
    }

    #[test]
    fn asap_is_at_most_alap() {
        let dag = dag_with_edges(7, &[(0, 2), (1, 2), (2, 5), (3, 5), (4, 6)]);
        for (a, l) in asap_levels(&dag).iter().zip(alap_levels(&dag)) {
            assert!(*a <= l);
        }
    }

    #[test]
    fn profile_of_parallel_block() {
        let dag = dag_with_edges(6, &[(0, 5), (1, 5)]);
        let p = DagProfile::of(&dag);
        assert_eq!(p.instructions, 6);
        assert_eq!(p.loads, 0);
        assert_eq!(p.edges, 2);
        assert_eq!(p.critical_path, 2);
        assert_eq!(p.parallelism, 3.0);
        assert_eq!(p.max_serial_loads, 0);
        assert!(p.to_string().contains("6 instrs"));
    }
}
