//! `Chances`: the maximum number of loads on any path of a component.
//!
//! Fig. 6 line 5 finds, within each connected component of the
//! independence subgraph, "the path with the maximum number of load
//! instructions"; the sum of loads along that path (`Chances`) divides the
//! issue slots that instruction `i` contributes to each load's weight.
//!
//! Two implementations are provided:
//!
//! * [`chances_exact`] — a longest-load-path dynamic program restricted to
//!   the component's node set. Linear in the component size, always exact.
//! * [`chances_level_approx`] — the paper's §3 fast method: nodes carry a
//!   precomputed *load level* (loads from the farthest leaf in the full
//!   DAG); a component's path length is estimated as
//!   `max_level − min_level + 1` via union–find interval merging. The
//!   estimate is exact on the paper's examples but can overestimate when
//!   the extreme levels lie on different paths; the ablation bench
//!   (`cargo bench -p bsched-bench`) quantifies the difference.

use std::collections::HashMap;

use bsched_ir::InstId;

use crate::bitset::BitSet;
use crate::dag::CodeDag;
use crate::unionfind::UnionFind;

/// Which `Chances` computation the balanced scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ChancesMethod {
    /// Exact longest-load-path dynamic programming (default).
    #[default]
    Exact,
    /// The paper's min/max load-level union–find approximation.
    LevelApprox,
}

/// Exact maximum number of loads on any directed path whose nodes all lie
/// in `component`.
///
/// The component is a subset of a DAG whose node ids increase along every
/// edge, so a single pass in decreasing id order computes
/// `best(v) = is_load(v) + max over kept successors best(s)`.
///
/// Returns 0 for a component containing no loads.
#[must_use]
pub fn chances_exact(dag: &CodeDag, component: &[InstId]) -> u32 {
    if component.is_empty() {
        return 0;
    }
    let mut member = BitSet::new(dag.len());
    for id in component {
        member.insert(id.index());
    }
    let mut best: HashMap<usize, u32> = HashMap::with_capacity(component.len());
    let mut sorted: Vec<InstId> = component.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // decreasing id = reverse topological
    let mut overall = 0;
    for &v in &sorted {
        let succ_best = dag
            .succs(v)
            .iter()
            .filter(|(s, _)| member.contains(s.index()))
            .map(|(s, _)| best[&s.index()])
            .max()
            .unwrap_or(0);
        let mine = u32::from(dag.is_load(v)) + succ_best;
        overall = overall.max(mine);
        best.insert(v.index(), mine);
    }
    overall
}

/// Global *load levels*: for each node, the maximum number of loads on any
/// path from the node toward the leaves of the **full** DAG, counting the
/// node itself.
///
/// This is the labelling the paper's fast method precomputes once ("each
/// node in G_ind is labeled with its level from the farthest leaf").
#[must_use]
pub fn load_levels(dag: &CodeDag) -> Vec<u32> {
    let n = dag.len();
    let mut level = vec![0u32; n];
    for v in (0..n).rev() {
        let id = InstId::from_usize(v);
        let succ_best = dag
            .succs(id)
            .iter()
            .map(|(s, _)| level[s.index()])
            .max()
            .unwrap_or(0);
        level[v] = u32::from(dag.is_load(id)) + succ_best;
    }
    level
}

/// The paper's approximation of `Chances` for every component at once.
///
/// `levels` must come from [`load_levels`] on the same DAG. Components are
/// formed with union–find over the edges whose endpoints are both kept,
/// merging `(min, max)` level intervals; each component's estimate is
/// `max − min + 1` clamped to the number of loads it contains (a component
/// with no loads estimates 0).
///
/// Returns, for each component in [`crate::connected_components`] order
/// (smallest member first), the pair `(component, estimated_chances)`.
#[must_use]
pub fn chances_level_approx(
    dag: &CodeDag,
    keep: &BitSet,
    levels: &[u32],
) -> Vec<(Vec<InstId>, u32)> {
    let mut uf = UnionFind::with_levels(levels);
    for e in dag.edges() {
        if keep.contains(e.from.index()) && keep.contains(e.to.index()) {
            uf.union(e.from.index(), e.to.index());
        }
    }
    // Group kept nodes by representative.
    let mut groups: HashMap<usize, Vec<InstId>> = HashMap::new();
    for v in keep.iter() {
        groups
            .entry(uf.find(v))
            .or_default()
            .push(InstId::from_usize(v));
    }
    let mut result: Vec<(Vec<InstId>, u32)> = groups
        .into_iter()
        .map(|(root, mut members)| {
            members.sort_unstable();
            let loads = members.iter().filter(|m| dag.is_load(**m)).count() as u32;
            let est = if loads == 0 {
                0
            } else {
                // Interval over the load levels of the component's *load*
                // members: on a load-path of length k the deepest load has
                // level `lo + k - 1`, so `hi − lo + 1` recovers k exactly
                // whenever the extreme-level loads share a path.
                let lo = members
                    .iter()
                    .filter(|m| dag.is_load(**m))
                    .map(|m| levels[m.index()])
                    .min()
                    .unwrap_or(0);
                let hi = members
                    .iter()
                    .filter(|m| dag.is_load(**m))
                    .map(|m| levels[m.index()])
                    .max()
                    .unwrap_or(0);
                let _ = root;
                (hi - lo + 1).min(loads)
            };
            (members, est)
        })
        .collect();
    result.sort_unstable_by_key(|(members, _)| members[0]);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::DepKind;
    use bsched_ir::{BasicBlock, Inst, MemAccess, MemLoc, Opcode, RegionId};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    /// Builds a DAG where `loads` marks which nodes are loads.
    fn dag_of(loads: &[bool], edges: &[(u32, u32)]) -> CodeDag {
        let insts = loads
            .iter()
            .map(|&is_load| {
                if is_load {
                    Inst::new(
                        Opcode::Ldc1,
                        vec![],
                        vec![],
                        Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
                    )
                } else {
                    Inst::new(Opcode::FMove, vec![], vec![], None)
                }
            })
            .collect();
        let block = BasicBlock::new("t", insts);
        let mut dag = CodeDag::new(&block);
        for &(a, b) in edges {
            dag.add_edge(id(a), id(b), DepKind::True);
        }
        dag
    }

    fn all_ids(n: u32) -> Vec<InstId> {
        (0..n).map(InstId::new).collect()
    }

    #[test]
    fn empty_component_has_zero_chances() {
        let dag = dag_of(&[true], &[]);
        assert_eq!(chances_exact(&dag, &[]), 0);
    }

    #[test]
    fn single_load_is_one_chance() {
        let dag = dag_of(&[true], &[]);
        assert_eq!(chances_exact(&dag, &all_ids(1)), 1);
    }

    #[test]
    fn loads_in_series_accumulate() {
        // L -> L -> L chain.
        let dag = dag_of(&[true, true, true], &[(0, 1), (1, 2)]);
        assert_eq!(chances_exact(&dag, &all_ids(3)), 3);
    }

    #[test]
    fn parallel_loads_do_not_accumulate() {
        // Two independent loads: longest load path = 1.
        let dag = dag_of(&[true, true], &[]);
        assert_eq!(chances_exact(&dag, &all_ids(2)), 1);
    }

    #[test]
    fn non_loads_on_path_are_not_counted() {
        // L -> X -> L: two loads on the path.
        let dag = dag_of(&[true, false, true], &[(0, 1), (1, 2)]);
        assert_eq!(chances_exact(&dag, &all_ids(3)), 2);
    }

    #[test]
    fn restriction_to_component_matters() {
        // L0 -> L1 -> L2, but the component only keeps L0 and L2: paths
        // through the removed L1 don't exist.
        let dag = dag_of(&[true, true, true], &[(0, 1), (1, 2)]);
        assert_eq!(chances_exact(&dag, &[id(0), id(2)]), 1);
    }

    #[test]
    fn branching_picks_heavier_path() {
        //      0(L)
        //     /    \
        //   1(X)   2(L)
        //    |      |
        //   3(X)   4(L)
        let dag = dag_of(
            &[true, false, true, false, true],
            &[(0, 1), (0, 2), (1, 3), (2, 4)],
        );
        assert_eq!(chances_exact(&dag, &all_ids(5)), 3, "L0->L2->L4");
    }

    #[test]
    fn load_levels_count_from_leaves() {
        // L0 -> X1 -> L2; levels: L2=1, X1=1, L0=2.
        let dag = dag_of(&[true, false, true], &[(0, 1), (1, 2)]);
        assert_eq!(load_levels(&dag), vec![2, 1, 1]);
    }

    #[test]
    fn level_approx_matches_exact_on_chain() {
        let dag = dag_of(&[true, true, true, false], &[(0, 1), (1, 2), (2, 3)]);
        let levels = load_levels(&dag);
        let mut keep = BitSet::new(4);
        keep.fill();
        let approx = chances_level_approx(&dag, &keep, &levels);
        assert_eq!(approx.len(), 1);
        assert_eq!(approx[0].1, 3);
        assert_eq!(chances_exact(&dag, &approx[0].0), 3);
    }

    #[test]
    fn level_approx_zero_for_loadless_component() {
        let dag = dag_of(&[false, false], &[(0, 1)]);
        let levels = load_levels(&dag);
        let mut keep = BitSet::new(2);
        keep.fill();
        let approx = chances_level_approx(&dag, &keep, &levels);
        assert_eq!(approx[0].1, 0);
    }

    #[test]
    fn level_approx_respects_keep_set() {
        // Chain L0 -> L1 -> L2; removing L1 separates the loads.
        let dag = dag_of(&[true, true, true], &[(0, 1), (1, 2)]);
        let levels = load_levels(&dag);
        let mut keep = BitSet::new(3);
        keep.insert(0);
        keep.insert(2);
        let approx = chances_level_approx(&dag, &keep, &levels);
        assert_eq!(approx.len(), 2);
        // Each singleton component has one load; estimate clamps to 1.
        assert!(approx.iter().all(|(_, c)| *c == 1));
    }

    #[test]
    fn level_approx_is_clamped_by_load_count() {
        // Diamond where extreme levels could overestimate: the clamp keeps
        // the estimate within the number of loads present.
        let dag = dag_of(&[true, true, false, true], &[(0, 2), (1, 2), (2, 3)]);
        let levels = load_levels(&dag);
        let mut keep = BitSet::new(4);
        keep.fill();
        for (comp, est) in chances_level_approx(&dag, &keep, &levels) {
            let loads = comp.iter().filter(|m| dag.is_load(**m)).count() as u32;
            assert!(est <= loads);
        }
    }

    #[test]
    fn chances_methods_default() {
        assert_eq!(ChancesMethod::default(), ChancesMethod::Exact);
    }
}
