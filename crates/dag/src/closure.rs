//! Transitive closures of the predecessor and successor relations.
//!
//! Fig. 6 line 3 removes `Pred(i) ∪ Succ(i)` — the *transitive closures*
//! of the dependence relation — from the DAG before looking for the
//! instructions that can run in parallel with `i`. Since the balanced
//! scheduling algorithm consults these sets once per instruction, we
//! precompute all of them as bitsets in one topological sweep each.

use bsched_ir::InstId;

use crate::bitset::BitSet;
use crate::dag::CodeDag;

/// Precomputed `Pred(i)`/`Succ(i)` closures for every node of a DAG.
///
/// Closures are *strict*: a node is not a member of its own closure sets.
#[derive(Debug, Clone)]
pub struct Closures {
    preds: Vec<BitSet>,
    succs: Vec<BitSet>,
}

impl Closures {
    /// Computes closures for `dag`.
    ///
    /// Nodes are numbered in program order and every edge goes forward, so
    /// a single left-to-right pass accumulates predecessor closures and a
    /// right-to-left pass accumulates successor closures; each union is a
    /// word-parallel bitset operation.
    #[must_use]
    pub fn compute(dag: &CodeDag) -> Self {
        let n = dag.len();
        let mut preds = vec![BitSet::new(n); n];
        for v in 0..n {
            let id = InstId::from_usize(v);
            // Predecessors have smaller indices, so splitting at v gives
            // disjoint access to preds[v] and every entry it unions in.
            let (done, rest) = preds.split_at_mut(v);
            let acc = &mut rest[0];
            for &(p, _) in dag.preds(id) {
                acc.insert(p.index());
                acc.union_with(&done[p.index()]);
            }
        }
        let mut succs = vec![BitSet::new(n); n];
        for v in (0..n).rev() {
            let id = InstId::from_usize(v);
            // Successors have larger indices; split just past v.
            let (left, done) = succs.split_at_mut(v + 1);
            let acc = &mut left[v];
            for &(s, _) in dag.succs(id) {
                acc.insert(s.index());
                acc.union_with(&done[s.index() - v - 1]);
            }
        }
        Self { preds, succs }
    }

    /// The strict transitive predecessor set of `id`.
    #[must_use]
    pub fn preds(&self, id: InstId) -> &BitSet {
        &self.preds[id.index()]
    }

    /// The strict transitive successor set of `id`.
    #[must_use]
    pub fn succs(&self, id: InstId) -> &BitSet {
        &self.succs[id.index()]
    }

    /// The set `G − (Pred(i) ∪ Succ(i) ∪ {i})`: every instruction that may
    /// execute in parallel with `id` (Fig. 6 line 3).
    #[must_use]
    pub fn independent_of(&self, id: InstId) -> BitSet {
        let mut s = BitSet::new(self.preds.len());
        self.independent_of_into(id, &mut s);
        s
    }

    /// [`independent_of`](Self::independent_of), written into a caller
    /// buffer so repeated queries (one per instruction in Fig. 6) reuse
    /// one allocation. `out` is reallocated only if its capacity does
    /// not match this DAG's node count.
    pub fn independent_of_into(&self, id: InstId, out: &mut BitSet) {
        let n = self.preds.len();
        if out.capacity() != n {
            *out = BitSet::new(n);
        }
        out.fill();
        out.difference_with(&self.preds[id.index()]);
        out.difference_with(&self.succs[id.index()]);
        out.remove(id.index());
    }

    /// `true` when `a` and `b` are unordered by dependences (neither
    /// reaches the other).
    #[must_use]
    pub fn independent(&self, a: InstId, b: InstId) -> bool {
        a != b
            && !self.succs[a.index()].contains(b.index())
            && !self.preds[a.index()].contains(b.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_dag, AliasModel};
    use crate::dag::DepKind;
    use bsched_ir::{BasicBlock, BlockBuilder, Inst, Opcode};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    /// A diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3, plus isolated 4.
    fn diamond() -> CodeDag {
        let insts = (0..5)
            .map(|_| Inst::new(Opcode::FMove, vec![], vec![], None))
            .collect();
        let block = BasicBlock::new("d", insts);
        let mut dag = CodeDag::new(&block);
        dag.add_edge(id(0), id(1), DepKind::True);
        dag.add_edge(id(0), id(2), DepKind::True);
        dag.add_edge(id(1), id(3), DepKind::True);
        dag.add_edge(id(2), id(3), DepKind::True);
        dag
    }

    #[test]
    fn diamond_closures() {
        let c = Closures::compute(&diamond());
        assert_eq!(c.preds(id(0)).len(), 0);
        assert_eq!(c.preds(id(3)).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(c.succs(id(0)).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(c.succs(id(3)).len(), 0);
        assert_eq!(c.preds(id(1)).iter().collect::<Vec<_>>(), vec![0]);
        assert_eq!(c.succs(id(1)).iter().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn independence_in_diamond() {
        let c = Closures::compute(&diamond());
        assert!(c.independent(id(1), id(2)), "diamond arms are parallel");
        assert!(!c.independent(id(0), id(3)));
        assert!(
            !c.independent(id(1), id(1)),
            "a node is not independent of itself"
        );
        assert!(
            c.independent(id(4), id(0)),
            "isolated node independent of all"
        );
        assert_eq!(
            c.independent_of(id(1)).iter().collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert_eq!(
            c.independent_of(id(4)).iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn independence_symmetry() {
        let c = Closures::compute(&diamond());
        for a in 0..5u32 {
            for b in 0..5u32 {
                assert_eq!(c.independent(id(a), id(b)), c.independent(id(b), id(a)));
            }
        }
    }

    #[test]
    fn chain_closure_is_total() {
        let mut b = BlockBuilder::new("chain");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let y = b.fadd("y", x, x);
        let _ = b.fadd("z", y, y);
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let c = Closures::compute(&dag);
        assert_eq!(c.preds(id(3)).len(), 3);
        assert_eq!(c.succs(id(0)).len(), 3);
        assert!(c.independent_of(id(2)).is_empty());
    }

    #[test]
    fn empty_dag() {
        let block = BasicBlock::new("e", vec![]);
        let dag = CodeDag::new(&block);
        let c = Closures::compute(&dag);
        // No nodes: nothing to assert beyond not panicking.
        assert_eq!(dag.len(), 0);
        drop(c);
    }
}
