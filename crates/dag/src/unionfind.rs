//! Disjoint-set union with the min/max level payload from §3.
//!
//! The paper sketches an `O(n·α(n))` implementation of steps 4–5 of the
//! algorithm: label every node with its level from the farthest leaf,
//! union nodes into connected components, and let each set carry the
//! minimum and maximum level seen, so the largest path length of a
//! component is `max − min + 1`. This module provides that structure
//! (path compression + union by rank, plus the level interval payload).

/// Union–find over `0..n` carrying a `(min_level, max_level)` interval.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    min_level: Vec<u32>,
    max_level: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets, each with level interval `[level[i], level[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `levels.len() != n`... the levels slice defines `n`.
    #[must_use]
    pub fn with_levels(levels: &[u32]) -> Self {
        let n = levels.len();
        Self {
            parent: (0..n).collect(),
            rank: vec![0; n],
            min_level: levels.to_vec(),
            max_level: levels.to_vec(),
        }
    }

    /// Creates `n` singleton sets with all-zero levels.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self::with_levels(&vec![0; n])
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` when there are no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x`, compressing paths.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets containing `a` and `b`, merging level intervals.
    /// Returns the new representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.min_level[big] = self.min_level[big].min(self.min_level[small]);
        self.max_level[big] = self.max_level[big].max(self.max_level[small]);
        big
    }

    /// `true` when `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The merged `(min, max)` level interval of the set containing `x`.
    pub fn level_interval(&mut self, x: usize) -> (u32, u32) {
        let r = self.find(x);
        (self.min_level[r], self.max_level[r])
    }

    /// The paper's path-length estimate for the set containing `x`:
    /// `max_level − min_level + 1`.
    pub fn interval_length(&mut self, x: usize) -> u32 {
        let (lo, hi) = self.level_interval(x);
        hi - lo + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_distinct() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.same_set(0, 1));
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 3));
        uf.union(3, 4);
        uf.union(2, 4);
        assert!(uf.same_set(0, 3));
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
    }

    #[test]
    fn level_intervals_merge() {
        let mut uf = UnionFind::with_levels(&[5, 2, 9, 7]);
        assert_eq!(uf.level_interval(0), (5, 5));
        uf.union(0, 1);
        assert_eq!(uf.level_interval(0), (2, 5));
        assert_eq!(uf.level_interval(1), (2, 5));
        uf.union(1, 2);
        assert_eq!(uf.level_interval(2), (2, 9));
        assert_eq!(uf.interval_length(0), 8);
        assert_eq!(uf.interval_length(3), 1);
    }

    #[test]
    fn path_compression_preserves_answers() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..64 {
            assert_eq!(uf.find(i), root);
        }
    }
}
