//! Reusable scratch space for the Fig. 6 inner loop.
//!
//! Balanced weight assignment runs, for every instruction `i` of a
//! block, an independence-set computation, a connected-components DFS
//! and a `Chances` evaluation per component. Done naively that is
//! several heap allocations per iteration of an O(n²) loop — the
//! dominant cost of compiling a block. [`DagWorkspace`] owns every
//! buffer those steps need and recycles them across iterations (and
//! across blocks), so after the first iteration warms the buffers up
//! the whole inner loop allocates nothing.
//!
//! Visited marks use an *epoch* scheme: each node carries the number of
//! the round that last touched it, so "clearing" the mark array between
//! rounds is a single counter increment instead of an O(n) write.
//! Components are stored flat — one arena of node ids plus a bounds
//! vector — rather than as a `Vec<Vec<InstId>>`.

use bsched_ir::InstId;

use crate::bitset::BitSet;
use crate::closure::Closures;
use crate::dag::CodeDag;

/// O(1)-clear visited marks: `marks[v] == epoch` means "seen this round".
#[derive(Debug, Clone, Default)]
struct EpochMarks {
    marks: Vec<u64>,
    epoch: u64,
}

impl EpochMarks {
    /// Starts a new round over `n` nodes; all marks become stale.
    fn begin(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        self.epoch += 1;
    }

    fn contains(&self, v: usize) -> bool {
        self.marks[v] == self.epoch
    }

    /// Marks `v`; returns `true` if it was unmarked this round.
    fn insert(&mut self, v: usize) -> bool {
        let fresh = self.marks[v] != self.epoch;
        self.marks[v] = self.epoch;
        fresh
    }
}

/// Reusable buffers for independence sets, connected components and
/// `Chances` — see the module docs.
///
/// One workspace serves any number of DAGs of any size: buffers grow to
/// the largest block seen and stay warm. A workspace holds no results a
/// caller may keep — component slices borrow from it and are
/// invalidated by the next [`find_components`](Self::find_components)
/// call, which the borrow checker enforces.
#[derive(Debug, Clone, Default)]
pub struct DagWorkspace {
    /// Scratch for the kept-node set (`G − Pred(i) − Succ(i) − {i}`).
    keep: BitSet,
    visited: EpochMarks,
    stack: Vec<usize>,
    /// Flat component arena: component `k` is
    /// `comp_nodes[comp_bounds[k]..comp_bounds[k + 1]]`, sorted.
    comp_nodes: Vec<InstId>,
    comp_bounds: Vec<usize>,
    /// `Chances` DP values, indexed by node id. Valid only for the
    /// component being scored: values are written in decreasing-id order
    /// and read only through in-component successors, which are always
    /// written first — stale entries from earlier components are never
    /// consulted.
    best: Vec<u32>,
    member: EpochMarks,
}

impl DagWorkspace {
    /// A workspace with cold buffers; they warm up on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes the connected components of `dag` restricted to `keep`,
    /// replacing the previously stored components.
    ///
    /// Identical to [`crate::connected_components`] — components in
    /// order of smallest member, each sorted — but writes into the flat
    /// arena instead of allocating per component.
    pub fn find_components(&mut self, dag: &CodeDag, keep: &BitSet) {
        self.keep.clone_from(keep);
        self.components_of_keep(dag);
    }

    /// Fig. 6 lines 3–4 in one step: forms the independence set
    /// `G − (Pred(i) ∪ Succ(i) ∪ {i})` in the internal `keep` buffer and
    /// decomposes it into connected components.
    pub fn find_independent_components(&mut self, dag: &CodeDag, closures: &Closures, i: InstId) {
        closures.independent_of_into(i, &mut self.keep);
        self.components_of_keep(dag);
    }

    /// DFS over the undirected dependence edges restricted to
    /// `self.keep`, writing components into the flat arena.
    fn components_of_keep(&mut self, dag: &CodeDag) {
        let n = dag.len();
        self.visited.begin(n);
        self.comp_nodes.clear();
        self.comp_bounds.clear();
        self.comp_bounds.push(0);
        self.stack.clear();

        for start in self.keep.iter() {
            if self.visited.contains(start) {
                continue;
            }
            let comp_start = self.comp_nodes.len();
            self.visited.insert(start);
            self.stack.push(start);
            while let Some(v) = self.stack.pop() {
                let id = InstId::from_usize(v);
                self.comp_nodes.push(id);
                let neighbours = dag
                    .succs(id)
                    .iter()
                    .map(|&(s, _)| s.index())
                    .chain(dag.preds(id).iter().map(|&(p, _)| p.index()));
                for u in neighbours {
                    if self.keep.contains(u) && self.visited.insert(u) {
                        self.stack.push(u);
                    }
                }
            }
            self.comp_nodes[comp_start..].sort_unstable();
            self.comp_bounds.push(self.comp_nodes.len());
        }
    }

    /// Number of components found by the last `find_*` call.
    #[must_use]
    pub fn component_count(&self) -> usize {
        self.comp_bounds.len().saturating_sub(1)
    }

    /// Component `k` as a sorted slice of instruction ids.
    ///
    /// # Panics
    ///
    /// Panics if `k >= component_count()`.
    #[must_use]
    pub fn component(&self, k: usize) -> &[InstId] {
        &self.comp_nodes[self.comp_bounds[k]..self.comp_bounds[k + 1]]
    }

    /// Exact `Chances` of component `k`: the maximum number of loads on
    /// any directed path within the component. Allocation-free
    /// equivalent of [`crate::chances_exact`].
    ///
    /// # Panics
    ///
    /// Panics if `k >= component_count()`.
    #[must_use]
    pub fn chances_exact(&mut self, dag: &CodeDag, k: usize) -> u32 {
        let component = &self.comp_nodes[self.comp_bounds[k]..self.comp_bounds[k + 1]];
        if component.is_empty() {
            return 0;
        }
        let n = dag.len();
        if self.best.len() < n {
            self.best.resize(n, 0);
        }
        self.member.begin(n);
        for id in component {
            self.member.insert(id.index());
        }
        let mut overall = 0;
        // Ids increase along every edge, so decreasing order is reverse
        // topological; the slice is sorted, so walk it backwards.
        for &v in component.iter().rev() {
            let succ_best = dag
                .succs(v)
                .iter()
                .filter(|(s, _)| self.member.contains(s.index()))
                .map(|(s, _)| self.best[s.index()])
                .max()
                .unwrap_or(0);
            let mine = u32::from(dag.is_load(v)) + succ_best;
            overall = overall.max(mine);
            self.best[v.index()] = mine;
        }
        overall
    }

    /// The §3 min/max-level estimate of `Chances` for component `k`:
    /// `max − min + 1` over the load levels of the component's loads,
    /// clamped to the load count (0 for a loadless component).
    ///
    /// Components from the DFS are exactly the union–find groups of
    /// [`crate::chances_level_approx`] — both are connectivity over the
    /// kept undirected edges — so this computes the same estimate
    /// without the union–find or the per-call hash map.
    ///
    /// `levels` must come from [`crate::load_levels`] on the same DAG.
    ///
    /// # Panics
    ///
    /// Panics if `k >= component_count()`.
    #[must_use]
    pub fn chances_level_approx(&self, dag: &CodeDag, k: usize, levels: &[u32]) -> u32 {
        let component = self.component(k);
        let mut loads = 0u32;
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        for &m in component {
            if dag.is_load(m) {
                loads += 1;
                let level = levels[m.index()];
                lo = lo.min(level);
                hi = hi.max(level);
            }
        }
        if loads == 0 {
            0
        } else {
            (hi - lo + 1).min(loads)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::connected_components;
    use crate::dag::DepKind;
    use crate::paths::{chances_exact, chances_level_approx, load_levels};
    use bsched_ir::{BasicBlock, Inst, MemAccess, MemLoc, Opcode, RegionId};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    fn dag_of(loads: &[bool], edges: &[(u32, u32)]) -> CodeDag {
        let insts = loads
            .iter()
            .map(|&is_load| {
                if is_load {
                    Inst::new(
                        Opcode::Ldc1,
                        vec![],
                        vec![],
                        Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
                    )
                } else {
                    Inst::new(Opcode::FMove, vec![], vec![], None)
                }
            })
            .collect();
        let block = BasicBlock::new("t", insts);
        let mut dag = CodeDag::new(&block);
        for &(a, b) in edges {
            dag.add_edge(id(a), id(b), DepKind::True);
        }
        dag
    }

    /// A messy DAG exercising multiple components, loadless components
    /// and branching load paths.
    fn messy() -> CodeDag {
        dag_of(
            &[true, false, true, true, false, true, false, true],
            &[(0, 1), (1, 2), (2, 3), (5, 6)],
        )
    }

    #[test]
    fn matches_allocating_components_for_every_center() {
        let dag = messy();
        let closures = Closures::compute(&dag);
        let mut ws = DagWorkspace::new();
        for i in dag.node_ids() {
            let keep = closures.independent_of(i);
            let expected = connected_components(&dag, &keep);
            ws.find_independent_components(&dag, &closures, i);
            assert_eq!(ws.component_count(), expected.len(), "center {i}");
            for (k, comp) in expected.iter().enumerate() {
                assert_eq!(ws.component(k), comp.as_slice(), "center {i} comp {k}");
            }
        }
    }

    #[test]
    fn matches_allocating_chances_for_every_center() {
        let dag = messy();
        let closures = Closures::compute(&dag);
        let levels = load_levels(&dag);
        let mut ws = DagWorkspace::new();
        for i in dag.node_ids() {
            let keep = closures.independent_of(i);
            ws.find_independent_components(&dag, &closures, i);
            for (k, (comp, approx)) in chances_level_approx(&dag, &keep, &levels)
                .into_iter()
                .enumerate()
            {
                assert_eq!(ws.chances_exact(&dag, k), chances_exact(&dag, &comp));
                assert_eq!(ws.chances_level_approx(&dag, k, &levels), approx);
            }
        }
    }

    #[test]
    fn reuse_across_dags_of_different_sizes() {
        let mut ws = DagWorkspace::new();
        let big = messy();
        let big_closures = Closures::compute(&big);
        ws.find_independent_components(&big, &big_closures, id(0));
        let big_count = ws.component_count();
        assert!(big_count >= 2);

        // A smaller DAG next: stale marks and bounds must not leak.
        let small = dag_of(&[true, true], &[]);
        let small_closures = Closures::compute(&small);
        ws.find_independent_components(&small, &small_closures, id(0));
        assert_eq!(ws.component_count(), 1);
        assert_eq!(ws.component(0), &[id(1)]);
        assert_eq!(ws.chances_exact(&small, 0), 1);

        // And back to the larger one.
        ws.find_independent_components(&big, &big_closures, id(0));
        assert_eq!(ws.component_count(), big_count);
    }

    #[test]
    fn explicit_keep_set_entry_point() {
        let dag = messy();
        let mut keep = BitSet::new(dag.len());
        keep.fill();
        let mut ws = DagWorkspace::new();
        ws.find_components(&dag, &keep);
        let expected = connected_components(&dag, &keep);
        assert_eq!(ws.component_count(), expected.len());
        for (k, comp) in expected.iter().enumerate() {
            assert_eq!(ws.component(k), comp.as_slice());
        }
    }

    #[test]
    fn empty_dag_and_empty_keep() {
        let dag = dag_of(&[], &[]);
        let closures = Closures::compute(&dag);
        let mut ws = DagWorkspace::new();
        let keep = BitSet::new(0);
        ws.find_components(&dag, &keep);
        assert_eq!(ws.component_count(), 0);
        drop(closures);
    }
}
