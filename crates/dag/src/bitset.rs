//! A dense fixed-capacity bitset.
//!
//! Transitive closures over code DAGs (paper Fig. 6 line 3) are the hot
//! analysis in balanced scheduling; representing `Pred(i)`/`Succ(i)` as
//! machine-word bitsets keeps the whole algorithm within the paper's
//! `O(n²·α(n))` bound with a tiny constant.

use std::fmt;

/// A fixed-capacity set of `usize` indices backed by `u64` words.
///
/// The [`Default`] value is an empty set of capacity 0.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold indices `0..capacity`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Capacity (exclusive upper bound on indices).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `idx`. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.capacity,
            "index {idx} out of capacity {}",
            self.capacity
        );
        let (w, b) = (idx / 64, idx % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes `idx`. Returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= capacity`.
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.capacity,
            "index {idx} out of capacity {}",
            self.capacity
        );
        let (w, b) = (idx / 64, idx % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Membership test. Out-of-range indices are simply absent.
    #[must_use]
    pub fn contains(&self, idx: usize) -> bool {
        if idx >= self.capacity {
            return false;
        }
        self.words[idx / 64] & (1 << (idx % 64)) != 0
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self − other`).
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Inserts every index in `0..capacity`.
    pub fn fill(&mut self) {
        for i in 0..self.words.len() {
            self.words[i] = u64::MAX;
        }
        self.trim_tail();
    }

    fn trim_tail(&mut self) {
        let excess = self.words.len() * 64 - self.capacity;
        if excess > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> excess;
            }
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the contained indices in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            word: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the indices of a [`BitSet`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    word: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.word != 0 {
                let bit = self.word.trailing_zeros() as usize;
                self.word &= self.word - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.word = self.set.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set whose capacity is one past the largest element
    /// (or 0 for an empty iterator).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(129), "double insert");
        assert!(s.contains(0));
        assert!(s.contains(64));
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    fn set_algebra() {
        let mut a: BitSet = [1usize, 2, 3, 70].into_iter().collect();
        let mut grow = BitSet::new(a.capacity());
        grow.insert(2);
        grow.insert(70);
        let b = grow;
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 70]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 70]);
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn fill_and_clear() {
        let mut s = BitSet::new(67);
        s.fill();
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
        assert!(!s.contains(67));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_order_is_increasing() {
        let s: BitSet = [65usize, 3, 128, 0].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 65, 128]);
    }

    #[test]
    fn empty_capacity_zero() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.capacity(), 0);
    }

    #[test]
    fn debug_lists_elements() {
        let s: BitSet = [1usize, 5].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }

    #[test]
    fn from_iter_capacity() {
        let s: BitSet = [9usize].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        let e: BitSet = std::iter::empty().collect();
        assert_eq!(e.capacity(), 0);
    }
}
