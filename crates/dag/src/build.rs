//! Dependence analysis: turning a basic block into a code DAG.

use std::collections::HashMap;

use bsched_ir::{BasicBlock, InstId, MemAccess, Reg};

use crate::dag::{CodeDag, DepKind};

/// How aggressively memory references are disambiguated (paper Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AliasModel {
    /// Fortran semantics: distinct regions (arrays, spill areas) never
    /// alias; references within one region conflict only when their byte
    /// ranges may overlap. This models the paper's parallelism-exposing
    /// transformation and is the default for all headline experiments.
    #[default]
    Fortran,
    /// Conservative C semantics: any two references to *different* regions
    /// may alias (as f2c-translated pointer code forces a compiler to
    /// assume); same-region references still use offset information.
    /// The paper's Fig. 8 explains why this model "severely restricts a
    /// scheduler's ability to exploit load level parallelism".
    CConservative,
}

impl AliasModel {
    /// Whether accesses `a` and `b` must be ordered under this model.
    #[must_use]
    pub fn conflicts(self, a: MemAccess, b: MemAccess) -> bool {
        if !a.is_write() && !b.is_write() {
            return false;
        }
        if a.loc().region() == b.loc().region() {
            return a.conflicts_same_region(b);
        }
        match self {
            AliasModel::Fortran => false,
            AliasModel::CConservative => true,
        }
    }
}

/// Builds the code DAG of `block` under `alias`.
///
/// Edges produced:
///
/// * **True** register dependences (def → later use);
/// * **Anti** register dependences (use → later def of the same register);
/// * **Output** register dependences (def → later def);
/// * **Memory** dependences between conflicting accesses per
///   [`AliasModel::conflicts`].
///
/// When the block uses only virtual registers in SSA-like fashion (each
/// register defined once), no anti/output register edges arise — which is
/// exactly why the paper's first scheduling pass has maximal freedom.
#[must_use]
pub fn build_dag(block: &BasicBlock, alias: AliasModel) -> CodeDag {
    let mut dag = CodeDag::new(block);

    // Register dependences.
    let mut last_def: HashMap<Reg, InstId> = HashMap::new();
    let mut uses_since_def: HashMap<Reg, Vec<InstId>> = HashMap::new();

    for (id, inst) in block.iter_ids() {
        for &u in inst.uses() {
            if let Some(&d) = last_def.get(&u) {
                dag.add_edge(d, id, DepKind::True);
            }
            uses_since_def.entry(u).or_default().push(id);
        }
        for &d in inst.defs() {
            if let Some(users) = uses_since_def.get(&d) {
                for &user in users {
                    if user != id {
                        dag.add_edge(user, id, DepKind::Anti);
                    }
                }
            }
            if let Some(&prev) = last_def.get(&d) {
                if prev != id {
                    dag.add_edge(prev, id, DepKind::Output);
                }
            }
            last_def.insert(d, id);
            uses_since_def.insert(d, Vec::new());
        }
    }

    // Memory dependences.
    let mem_ops: Vec<(InstId, MemAccess)> = block
        .iter_ids()
        .filter_map(|(id, i)| i.mem().map(|m| (id, m)))
        .collect();
    for (later_pos, &(later_id, later_acc)) in mem_ops.iter().enumerate() {
        for &(earlier_id, earlier_acc) in &mem_ops[..later_pos] {
            if alias.conflicts(earlier_acc, later_acc) {
                dag.add_edge(earlier_id, later_id, DepKind::Memory);
            }
        }
    }

    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::{BlockBuilder, Inst, InstId, Opcode, PhysReg, RegClass};

    fn id(i: u32) -> InstId {
        InstId::new(i)
    }

    #[test]
    fn true_dependence_def_to_use() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let _ = b.fadd("y", x, x);
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        assert_eq!(
            dag.edge_kind(id(0), id(1)),
            Some(DepKind::True),
            "base feeds load"
        );
        assert_eq!(
            dag.edge_kind(id(1), id(2)),
            Some(DepKind::True),
            "load feeds add"
        );
        assert!(!dag.has_edge(id(0), id(2)), "no direct edge base->add");
    }

    #[test]
    fn virtual_registers_produce_no_false_deps() {
        let mut b = BlockBuilder::new("t");
        let c1 = b.fconst("c1", 1.0);
        let c2 = b.fconst("c2", 2.0);
        let _ = b.fadd("s", c1, c2);
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        assert!(
            dag.edges().all(|e| e.kind == DepKind::True),
            "SSA-style block has only true deps"
        );
    }

    #[test]
    fn physical_register_reuse_creates_anti_and_output() {
        // r1 = li ; r2 = add r1, r1 ; r1 = li  (reuses r1)
        let r1: bsched_ir::Reg = PhysReg::new(RegClass::Int, 1).into();
        let r2: bsched_ir::Reg = PhysReg::new(RegClass::Int, 2).into();
        let block = bsched_ir::BasicBlock::new(
            "t",
            vec![
                Inst::new(Opcode::Li, vec![r1], vec![], None),
                Inst::new(Opcode::Add, vec![r2], vec![r1, r1], None),
                Inst::new(Opcode::Li, vec![r1], vec![], None),
            ],
        );
        let dag = build_dag(&block, AliasModel::Fortran);
        assert_eq!(dag.edge_kind(id(0), id(1)), Some(DepKind::True));
        assert_eq!(
            dag.edge_kind(id(1), id(2)),
            Some(DepKind::Anti),
            "use then redefine"
        );
        assert_eq!(
            dag.edge_kind(id(0), id(2)),
            Some(DepKind::Output),
            "def then redefine"
        );
    }

    #[test]
    fn redefinition_with_self_use_has_no_self_edge() {
        // r1 = add r1, r1 — reads old r1, writes new r1.
        let r1: bsched_ir::Reg = PhysReg::new(RegClass::Int, 1).into();
        let block = bsched_ir::BasicBlock::new(
            "t",
            vec![
                Inst::new(Opcode::Li, vec![r1], vec![], None),
                Inst::new(Opcode::Add, vec![r1], vec![r1, r1], None),
            ],
        );
        let dag = build_dag(&block, AliasModel::Fortran);
        assert_eq!(dag.edge_kind(id(0), id(1)), Some(DepKind::True));
        assert_eq!(dag.edge_count(), 1);
    }

    #[test]
    fn store_load_same_region_conflicts() {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(0));
        b.store_region(region, x, base, Some(0));
        let _ = b.load_region("y", region, base, Some(0));
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        // load x (1) -> store (2): anti via memory; store (2) -> load y (3): true mem dep.
        assert_eq!(
            dag.edge_kind(id(1), id(2)),
            Some(DepKind::True),
            "register edge dominates"
        );
        assert_eq!(dag.edge_kind(id(2), id(3)), Some(DepKind::Memory));
    }

    #[test]
    fn disjoint_offsets_do_not_conflict_in_fortran() {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let x = b.load_region("x", region, base, Some(0));
        b.store_region(region, x, base, Some(64));
        let _ = b.load_region("y", region, base, Some(0));
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        assert!(
            !dag.has_edge(id(2), id(3)),
            "store to offset 64 vs load of offset 0"
        );
    }

    #[test]
    fn cross_region_fortran_vs_c() {
        // Fig. 8: store a[1]; load b[3]. Fortran: independent. C: ordered.
        let mut b = BlockBuilder::new("t");
        let region_a = b.fresh_region();
        let region_b = b.fresh_region();
        let base = b.def_int("base");
        let v = b.fconst("v", 1.0);
        b.store_region(region_a, v, base, Some(8));
        let _ = b.load_region("b3", region_b, base, Some(24));
        let block = b.finish();

        let fortran = build_dag(&block, AliasModel::Fortran);
        assert!(
            !fortran.has_edge(id(2), id(3)),
            "Fortran arrays are disjoint"
        );

        let c = build_dag(&block, AliasModel::CConservative);
        assert_eq!(
            c.edge_kind(id(2), id(3)),
            Some(DepKind::Memory),
            "C must order them"
        );
    }

    #[test]
    fn loads_never_conflict_with_loads() {
        let mut b = BlockBuilder::new("t");
        let r1 = b.fresh_region();
        let r2 = b.fresh_region();
        let base = b.def_int("base");
        let _ = b.load_region("x", r1, base, Some(0));
        let _ = b.load_region("y", r2, base, None);
        let dag = build_dag(&b.finish(), AliasModel::CConservative);
        assert!(!dag.has_edge(id(1), id(2)), "read-read never ordered");
    }

    #[test]
    fn unknown_offset_conflicts_within_region() {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let v = b.fconst("v", 0.0);
        b.store_region(region, v, base, None);
        let _ = b.load_region("x", region, base, Some(800));
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        assert_eq!(dag.edge_kind(id(2), id(3)), Some(DepKind::Memory));
    }

    #[test]
    fn dag_is_acyclic_by_construction() {
        // Any built DAG only has forward edges; verify on a busy block.
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let mut prev = b.load_region("l", region, base, Some(0));
        for k in 1..20 {
            let x = b.load_region("l", region, base, Some(8 * k));
            prev = b.fadd("a", prev, x);
            b.store_region(region, prev, base, Some(8 * k + 400));
        }
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        for e in dag.edges() {
            assert!(e.from < e.to);
        }
    }
}
