//! Code DAG construction and analysis.
//!
//! "The primary data structure used by list schedulers is the *code DAG*,
//! in which nodes represent instructions and edges represent dependences
//! between them" (§2). This crate builds that DAG from a
//! [`bsched_ir::BasicBlock`] and provides every graph analysis the
//! balanced scheduling algorithm (paper Fig. 6) needs:
//!
//! * [`build`] — dependence edges: register **true** (def→use), **anti**
//!   (use→def) and **output** (def→def) dependences, plus **memory**
//!   dependences between conflicting loads/stores under a configurable
//!   [`AliasModel`] (Fortran array independence vs conservative C, paper
//!   Fig. 8);
//! * [`closure`] — bitset transitive closures `Pred(i)` / `Succ(i)`;
//! * [`components`] — connected components of the independence subgraph
//!   `G − (Pred(i) ∪ Succ(i))` (Fig. 6 line 3–4);
//! * [`paths`] — `Chances`: the maximum number of loads on any path in a
//!   component, both the exact DP and the paper's min/max-level
//!   union-find approximation (§3);
//! * [`unionfind`] — the disjoint-set structure backing the approximation;
//! * [`workspace`] — reusable scratch buffers so the Fig. 6 inner loop
//!   runs allocation-free;
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! # Example
//!
//! ```
//! use bsched_ir::BlockBuilder;
//! use bsched_dag::{build_dag, AliasModel};
//!
//! let mut b = BlockBuilder::new("ex");
//! let base = b.def_int("base");
//! let x = b.load("x", base, 0);
//! let y = b.fadd("y", x, x); // true dependence on the load
//! let _ = y;
//! let dag = build_dag(&b.finish(), AliasModel::Fortran);
//! assert_eq!(dag.len(), 3);
//! assert!(dag.has_edge(bsched_ir::InstId::new(1), bsched_ir::InstId::new(2)));
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod bitset;
pub mod build;
pub mod closure;
pub mod components;
pub mod dag;
pub mod dot;
pub mod paths;
pub mod unionfind;
pub mod workspace;

pub use analysis::{alap_levels, asap_levels, critical_path_length, slack, DagProfile};
pub use bitset::BitSet;
pub use build::{build_dag, AliasModel};
pub use closure::Closures;
pub use components::connected_components;
pub use dag::{CodeDag, DepKind, Edge};
pub use dot::{to_dot, to_dot_annotated, DotOverlay};
pub use paths::{chances_exact, chances_level_approx, load_levels, ChancesMethod};
pub use unionfind::UnionFind;
pub use workspace::DagWorkspace;
