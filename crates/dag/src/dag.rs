//! The code DAG data structure.

use std::fmt;

use bsched_ir::{BasicBlock, Inst, InstId, Opcode};

/// Kind of dependence edge between two instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepKind {
    /// Read-after-write through a register: the successor consumes a value
    /// the predecessor produces. Only true dependences carry the
    /// predecessor's latency/weight.
    True,
    /// Write-after-read through a register (anti-dependence). Introduced by
    /// register reuse; absent when scheduling over virtual registers.
    Anti,
    /// Write-after-write through a register (output dependence).
    Output,
    /// Ordering between conflicting memory accesses (store→load,
    /// load→store, store→store) under the active alias model.
    Memory,
}

impl DepKind {
    /// `true` for dependences that carry the producer's result latency.
    #[must_use]
    pub fn carries_latency(self) -> bool {
        matches!(self, DepKind::True)
    }
}

impl fmt::Display for DepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DepKind::True => "true",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
            DepKind::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// A directed dependence edge `from → to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The predecessor instruction.
    pub from: InstId,
    /// The successor instruction.
    pub to: InstId,
    /// Why the successor must follow the predecessor.
    pub kind: DepKind,
}

/// The code DAG of one basic block.
///
/// Nodes are the block's instruction ids (`0..len`); edges always point
/// from earlier to later program positions, so the graph is acyclic by
/// construction. Multiple dependences between the same pair are collapsed
/// to the strongest ([`DepKind::True`] wins, since only it carries
/// latency).
#[derive(Debug, Clone)]
pub struct CodeDag {
    n: usize,
    /// Forward adjacency: `succs[i]` lists (successor, kind).
    succs: Vec<Vec<(InstId, DepKind)>>,
    /// Backward adjacency: `preds[i]` lists (predecessor, kind).
    preds: Vec<Vec<(InstId, DepKind)>>,
    /// `is_load[i]` mirrors the block's opcode classification.
    is_load: Vec<bool>,
    /// The instruction opcodes, for latency tables and diagnostics.
    opcodes: Vec<Opcode>,
    /// `uses − defs` per instruction, the paper's first tie-break (§4.1).
    pressure_delta: Vec<i64>,
    /// Display names copied from the block (L0, X1, … in the paper).
    names: Vec<String>,
    edge_count: usize,
}

impl CodeDag {
    /// Creates an edgeless DAG over the instructions of `block`.
    #[must_use]
    pub fn new(block: &BasicBlock) -> Self {
        let n = block.len();
        let is_load = block.insts().iter().map(Inst::is_load).collect();
        let opcodes = block.insts().iter().map(Inst::opcode).collect();
        let pressure_delta = block.insts().iter().map(Inst::pressure_delta).collect();
        let names = block
            .iter_ids()
            .map(|(id, i)| i.name().map_or_else(|| id.to_string(), str::to_owned))
            .collect();
        Self {
            n,
            succs: vec![Vec::new(); n],
            preds: vec![Vec::new(); n],
            is_load,
            opcodes,
            pressure_delta,
            names,
            edge_count: 0,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the DAG has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of (collapsed) edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds a dependence `from → to` of the given kind.
    ///
    /// If an edge already exists between the pair, the kinds are merged:
    /// a [`DepKind::True`] edge subsumes any other kind.
    ///
    /// # Panics
    ///
    /// Panics if `from >= to` (edges must respect program order, which is
    /// what guarantees acyclicity) or either id is out of range.
    pub fn add_edge(&mut self, from: InstId, to: InstId, kind: DepKind) {
        assert!(
            from.index() < self.n && to.index() < self.n,
            "node out of range"
        );
        assert!(
            from < to,
            "edges must go forward in program order ({from} -> {to})"
        );
        if let Some(slot) = self.succs[from.index()].iter_mut().find(|(t, _)| *t == to) {
            if kind == DepKind::True && slot.1 != DepKind::True {
                slot.1 = DepKind::True;
                let back = self.preds[to.index()]
                    .iter_mut()
                    .find(|(f, _)| *f == from)
                    .expect("adjacency lists out of sync");
                back.1 = DepKind::True;
            }
            return;
        }
        self.succs[from.index()].push((to, kind));
        self.preds[to.index()].push((from, kind));
        self.edge_count += 1;
    }

    /// `true` if an edge `from → to` exists (any kind).
    #[must_use]
    pub fn has_edge(&self, from: InstId, to: InstId) -> bool {
        from.index() < self.n && self.succs[from.index()].iter().any(|(t, _)| *t == to)
    }

    /// The kind of the edge `from → to`, if present.
    #[must_use]
    pub fn edge_kind(&self, from: InstId, to: InstId) -> Option<DepKind> {
        self.succs[from.index()]
            .iter()
            .find(|(t, _)| *t == to)
            .map(|(_, k)| *k)
    }

    /// Direct successors of `id` with edge kinds.
    #[must_use]
    pub fn succs(&self, id: InstId) -> &[(InstId, DepKind)] {
        &self.succs[id.index()]
    }

    /// Direct predecessors of `id` with edge kinds.
    #[must_use]
    pub fn preds(&self, id: InstId) -> &[(InstId, DepKind)] {
        &self.preds[id.index()]
    }

    /// `true` if instruction `id` is a load.
    #[must_use]
    pub fn is_load(&self, id: InstId) -> bool {
        self.is_load[id.index()]
    }

    /// Ids of all load nodes.
    #[must_use]
    pub fn load_ids(&self) -> Vec<InstId> {
        (0..self.n)
            .filter(|&i| self.is_load[i])
            .map(InstId::from_usize)
            .collect()
    }

    /// The instruction's `uses − defs` register-count difference, copied
    /// from the block at construction (the paper's first ready-list
    /// tie-break, §4.1).
    #[must_use]
    pub fn pressure_delta(&self, id: InstId) -> i64 {
        self.pressure_delta[id.index()]
    }

    /// The instruction's opcode.
    #[must_use]
    pub fn opcode(&self, id: InstId) -> Opcode {
        self.opcodes[id.index()]
    }

    /// Reclassifies a non-load node as load-like for weighting purposes.
    ///
    /// §6 suggests extending balanced scheduling to other multi-cycle
    /// instructions (asynchronous FP units); marking an FP operation
    /// load-like makes the weight assigners treat its latency as
    /// uncertain. The simulator keys off real opcodes, not this flag.
    pub fn mark_load_like(&mut self, id: InstId) {
        self.is_load[id.index()] = true;
    }

    /// Display name of a node.
    #[must_use]
    pub fn name(&self, id: InstId) -> &str {
        &self.names[id.index()]
    }

    /// Iterates all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = InstId> {
        (0..self.n).map(InstId::from_usize)
    }

    /// Iterates every edge.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.succs.iter().enumerate().flat_map(|(i, list)| {
            list.iter().map(move |&(to, kind)| Edge {
                from: InstId::from_usize(i),
                to,
                kind,
            })
        })
    }

    /// Roots: nodes with no predecessors.
    #[must_use]
    pub fn roots(&self) -> Vec<InstId> {
        self.node_ids()
            .filter(|id| self.preds(*id).is_empty())
            .collect()
    }

    /// Leaves: nodes with no successors.
    #[must_use]
    pub fn leaves(&self) -> Vec<InstId> {
        self.node_ids()
            .filter(|id| self.succs(*id).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::BlockBuilder;

    fn three_node_dag() -> CodeDag {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("x", base, 0);
        let _ = b.fadd("y", x, x);
        CodeDag::new(&b.finish())
    }

    #[test]
    fn new_dag_is_edgeless() {
        let d = three_node_dag();
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert_eq!(d.edge_count(), 0);
        assert_eq!(d.roots().len(), 3);
        assert_eq!(d.leaves().len(), 3);
        assert!(d.is_load(InstId::new(1)));
        assert!(!d.is_load(InstId::new(0)));
        assert_eq!(d.load_ids(), vec![InstId::new(1)]);
    }

    #[test]
    fn add_edge_updates_both_directions() {
        let mut d = three_node_dag();
        d.add_edge(InstId::new(0), InstId::new(1), DepKind::True);
        assert!(d.has_edge(InstId::new(0), InstId::new(1)));
        assert!(!d.has_edge(InstId::new(1), InstId::new(0)));
        assert_eq!(d.succs(InstId::new(0)), &[(InstId::new(1), DepKind::True)]);
        assert_eq!(d.preds(InstId::new(1)), &[(InstId::new(0), DepKind::True)]);
        assert_eq!(d.edge_count(), 1);
        assert_eq!(d.roots(), vec![InstId::new(0), InstId::new(2)]);
        assert_eq!(d.leaves(), vec![InstId::new(1), InstId::new(2)]);
    }

    #[test]
    fn duplicate_edges_collapse_true_wins() {
        let mut d = three_node_dag();
        d.add_edge(InstId::new(0), InstId::new(1), DepKind::Anti);
        d.add_edge(InstId::new(0), InstId::new(1), DepKind::True);
        d.add_edge(InstId::new(0), InstId::new(1), DepKind::Memory);
        assert_eq!(d.edge_count(), 1);
        assert_eq!(
            d.edge_kind(InstId::new(0), InstId::new(1)),
            Some(DepKind::True)
        );
        assert_eq!(d.preds(InstId::new(1))[0].1, DepKind::True);
    }

    #[test]
    #[should_panic(expected = "forward in program order")]
    fn backward_edge_panics() {
        let mut d = three_node_dag();
        d.add_edge(InstId::new(2), InstId::new(1), DepKind::True);
    }

    #[test]
    #[should_panic(expected = "forward in program order")]
    fn self_edge_panics() {
        let mut d = three_node_dag();
        d.add_edge(InstId::new(1), InstId::new(1), DepKind::True);
    }

    #[test]
    fn names_come_from_block() {
        let d = three_node_dag();
        assert_eq!(d.name(InstId::new(0)), "base");
        assert_eq!(d.name(InstId::new(1)), "x");
    }

    #[test]
    fn edges_iterator_lists_all() {
        let mut d = three_node_dag();
        d.add_edge(InstId::new(0), InstId::new(1), DepKind::True);
        d.add_edge(InstId::new(1), InstId::new(2), DepKind::Memory);
        let edges: Vec<Edge> = d.edges().collect();
        assert_eq!(edges.len(), 2);
        assert!(edges
            .iter()
            .any(|e| e.kind == DepKind::Memory && e.to == InstId::new(2)));
    }

    #[test]
    fn dep_kind_latency_flag() {
        assert!(DepKind::True.carries_latency());
        assert!(!DepKind::Anti.carries_latency());
        assert!(!DepKind::Output.carries_latency());
        assert!(!DepKind::Memory.carries_latency());
    }
}
