//! Graphviz (DOT) export of code DAGs.

use std::fmt::Write as _;

use crate::dag::{CodeDag, DepKind};

/// Renders `dag` as a Graphviz `digraph`.
///
/// Load nodes are drawn as boxes (like the paper's figures), other
/// instructions as ellipses; non-true dependences are dashed and labelled
/// with their kind.
///
/// # Example
///
/// ```
/// use bsched_ir::BlockBuilder;
/// use bsched_dag::{build_dag, to_dot, AliasModel};
///
/// let mut b = BlockBuilder::new("ex");
/// let base = b.def_int("base");
/// let x = b.load("L0", base, 0);
/// let _ = b.fadd("X0", x, x);
/// let dot = to_dot(&build_dag(&b.finish(), AliasModel::Fortran), "ex");
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("L0"));
/// ```
#[must_use]
pub fn to_dot(dag: &CodeDag, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for id in dag.node_ids() {
        let shape = if dag.is_load(id) { "box" } else { "ellipse" };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape={shape}];",
            id.raw(),
            dag.name(id)
        );
    }
    for e in dag.edges() {
        let style = match e.kind {
            DepKind::True => String::new(),
            other => format!(" [style=dashed, label=\"{other}\"]"),
        };
        let _ = writeln!(out, "  n{} -> n{}{};", e.from.raw(), e.to.raw(), style);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_dag, AliasModel};
    use bsched_ir::BlockBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("L0", base, 0);
        let _ = b.fadd("X0", x, x);
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let dot = to_dot(&dag, "t");
        assert!(dot.starts_with("digraph \"t\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("shape=box"), "loads are boxes");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn non_true_edges_are_dashed() {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let v = b.fconst("v", 0.0);
        b.store_region(region, v, base, Some(0));
        let _ = b.load_region("l", region, base, Some(0));
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let dot = to_dot(&dag, "t");
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("memory"));
    }
}
