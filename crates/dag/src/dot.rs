//! Graphviz (DOT) export of code DAGs.

use std::fmt::Write as _;

use bsched_ir::InstId;

use crate::dag::{CodeDag, DepKind};

/// Analysis results overlaid on a [`to_dot_annotated`] export.
///
/// The dag crate cannot compute these numbers itself — balanced weights
/// live in `bsched-core` and register pressure in `bsched-analyze`, both
/// downstream of this crate — so callers supply them and this module
/// only renders.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DotOverlay {
    /// Extra label line per node (e.g. `w=5/2`).
    pub node_notes: Vec<(InstId, String)>,
    /// Register-pressure heat per node (values live while it issues);
    /// rendered as a red fill scaled to the hottest node.
    pub pressure: Vec<(InstId, u32)>,
    /// Graph-level caption (e.g. `MaxLive: 3 int / 5 float`).
    pub caption: String,
}

/// Renders `dag` as a Graphviz `digraph`.
///
/// Load nodes are drawn as boxes (like the paper's figures), other
/// instructions as ellipses; non-true dependences are dashed and labelled
/// with their kind.
///
/// # Example
///
/// ```
/// use bsched_ir::BlockBuilder;
/// use bsched_dag::{build_dag, to_dot, AliasModel};
///
/// let mut b = BlockBuilder::new("ex");
/// let base = b.def_int("base");
/// let x = b.load("L0", base, 0);
/// let _ = b.fadd("X0", x, x);
/// let dot = to_dot(&build_dag(&b.finish(), AliasModel::Fortran), "ex");
/// assert!(dot.contains("digraph"));
/// assert!(dot.contains("L0"));
/// ```
#[must_use]
pub fn to_dot(dag: &CodeDag, title: &str) -> String {
    to_dot_annotated(dag, title, &DotOverlay::default())
}

/// Like [`to_dot`], with analysis results from `overlay` drawn on top:
/// per-node label lines, a pressure heat fill, and a graph caption. An
/// empty overlay renders exactly what [`to_dot`] does.
#[must_use]
pub fn to_dot_annotated(dag: &CodeDag, title: &str, overlay: &DotOverlay) -> String {
    let note_of = |id: InstId| {
        overlay
            .node_notes
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, n)| n.as_str())
    };
    let pressure_of = |id: InstId| {
        overlay
            .pressure
            .iter()
            .find(|(i, _)| *i == id)
            .map(|(_, p)| *p)
    };
    let peak = overlay.pressure.iter().map(|(_, p)| *p).max().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{title}\" {{");
    let _ = writeln!(out, "  rankdir=TB;");
    if !overlay.caption.is_empty() {
        let _ = writeln!(out, "  label=\"{}\"; labelloc=b;", overlay.caption);
    }
    for id in dag.node_ids() {
        let shape = if dag.is_load(id) { "box" } else { "ellipse" };
        let mut label = dag.name(id).to_owned();
        if let Some(note) = note_of(id) {
            label.push_str("\\n");
            label.push_str(note);
        }
        let fill = match pressure_of(id) {
            Some(p) if peak > 0 => {
                // Saturation grows with pressure so the hottest nodes
                // read as the reddest; value stays 1.0 for legibility.
                let sat = 0.15 + 0.55 * f64::from(p) / f64::from(peak);
                format!(", style=filled, fillcolor=\"0.0 {sat:.2} 1.0\"")
            }
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{label}\", shape={shape}{fill}];",
            id.raw()
        );
    }
    for e in dag.edges() {
        let style = match e.kind {
            DepKind::True => String::new(),
            other => format!(" [style=dashed, label=\"{other}\"]"),
        };
        let _ = writeln!(out, "  n{} -> n{}{};", e.from.raw(), e.to.raw(), style);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_dag, AliasModel};
    use bsched_ir::BlockBuilder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("L0", base, 0);
        let _ = b.fadd("X0", x, x);
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let dot = to_dot(&dag, "t");
        assert!(dot.starts_with("digraph \"t\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("n1 -> n2"));
        assert!(dot.contains("shape=box"), "loads are boxes");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn annotated_overlay_draws_notes_fill_and_caption() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("L0", base, 0);
        let _ = b.fadd("X0", x, x);
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let overlay = DotOverlay {
            node_notes: vec![(InstId::new(1), "w=5/2".to_owned())],
            pressure: vec![(InstId::new(1), 1), (InstId::new(2), 2)],
            caption: "MaxLive: 2 float".to_owned(),
        };
        let dot = to_dot_annotated(&dag, "t", &overlay);
        assert!(dot.contains("L0\\nw=5/2"), "{dot}");
        assert!(dot.contains("style=filled"), "{dot}");
        assert!(
            dot.contains("fillcolor=\"0.0 0.70 1.0\""),
            "hottest node: {dot}"
        );
        assert!(
            dot.contains("label=\"MaxLive: 2 float\"; labelloc=b;"),
            "{dot}"
        );
        // Unannotated nodes stay plain.
        assert!(dot.contains("n0 [label=\"base\", shape=ellipse];"), "{dot}");
    }

    #[test]
    fn empty_overlay_matches_plain_export() {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("L0", base, 0);
        let _ = b.fadd("X0", x, x);
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        assert_eq!(
            to_dot(&dag, "t"),
            to_dot_annotated(&dag, "t", &DotOverlay::default())
        );
    }

    #[test]
    fn non_true_edges_are_dashed() {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let v = b.fconst("v", 0.0);
        b.store_region(region, v, base, Some(0));
        let _ = b.load_region("l", region, base, Some(0));
        let dag = build_dag(&b.finish(), AliasModel::Fortran);
        let dot = to_dot(&dag, "t");
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("memory"));
    }
}
