//! Property tests of the DAG analyses over randomly generated blocks.

use bsched_dag::{
    build_dag, chances_exact, chances_level_approx, connected_components, load_levels, AliasModel,
    BitSet, Closures, DagProfile,
};
use bsched_ir::InstId;
use bsched_stats::Pcg32;
use bsched_workload::{random_block, GeneratorConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (5usize..60, 0.05f64..0.6, 0.0f64..0.5, 0.0f64..0.3).prop_map(
        |(size, load_fraction, chain_fraction, store_fraction)| GeneratorConfig {
            size,
            load_fraction,
            chain_fraction,
            store_fraction,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Transitive closures are consistent with direct edges and with each
    /// other: `b ∈ Succ(a)` ⇔ `a ∈ Pred(b)`, and closures are transitive.
    #[test]
    fn closures_are_transitive_and_dual(cfg in arb_config(), seed in 0u64..500) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        let dag = build_dag(&block, AliasModel::Fortran);
        let closures = Closures::compute(&dag);
        for a in dag.node_ids() {
            for b_idx in closures.succs(a).iter() {
                let b = InstId::from_usize(b_idx);
                prop_assert!(closures.preds(b).contains(a.index()), "duality {a} {b}");
                // Transitivity: Succ(b) ⊆ Succ(a).
                for c_idx in closures.succs(b).iter() {
                    prop_assert!(closures.succs(a).contains(c_idx));
                }
            }
        }
        // Direct edges are in the closure.
        for e in dag.edges() {
            prop_assert!(closures.succs(e.from).contains(e.to.index()));
        }
    }

    /// The independence subgraph's components partition the keep set, and
    /// all members really are pairwise independent of `i`.
    #[test]
    fn components_partition_the_keep_set(cfg in arb_config(), seed in 0u64..500) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        let dag = build_dag(&block, AliasModel::Fortran);
        let closures = Closures::compute(&dag);
        for i in dag.node_ids().step_by(7) {
            let keep = closures.independent_of(i);
            let comps = connected_components(&dag, &keep);
            let mut seen = BitSet::new(dag.len());
            for comp in &comps {
                for &m in comp {
                    prop_assert!(keep.contains(m.index()), "member outside keep");
                    prop_assert!(seen.insert(m.index()), "component overlap at {m}");
                    prop_assert!(closures.independent(i, m), "{m} not independent of {i}");
                }
            }
            prop_assert_eq!(seen.len(), keep.len(), "components must cover keep");
        }
    }

    /// `Chances` bounds: exact ≤ level approximation ≤ component load
    /// count, and the approximation is never below 1 when loads exist.
    #[test]
    fn chances_bounds(cfg in arb_config(), seed in 0u64..500) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        let dag = build_dag(&block, AliasModel::Fortran);
        let closures = Closures::compute(&dag);
        let levels = load_levels(&dag);
        for i in dag.node_ids().step_by(5) {
            let keep = closures.independent_of(i);
            for (comp, approx) in chances_level_approx(&dag, &keep, &levels) {
                let exact = chances_exact(&dag, &comp);
                let loads = comp.iter().filter(|m| dag.is_load(**m)).count() as u32;
                prop_assert!(exact <= loads);
                prop_assert!(approx <= loads, "clamp");
                if loads > 0 {
                    prop_assert!(exact >= 1);
                    prop_assert!(approx >= 1);
                }
            }
        }
    }

    /// Whole-DAG profile sanity: depth ≤ n, serial loads ≤ loads,
    /// parallelism ≥ 1 for nonempty DAGs.
    #[test]
    fn profile_invariants(cfg in arb_config(), seed in 0u64..500) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        let dag = build_dag(&block, AliasModel::Fortran);
        let p = DagProfile::of(&dag);
        prop_assert_eq!(p.instructions, dag.len());
        prop_assert!(p.critical_path as usize <= p.instructions);
        prop_assert!(p.max_serial_loads as usize <= p.loads);
        prop_assert!(p.parallelism >= 1.0);
    }

    /// The conservative C alias model only ever *adds* edges relative to
    /// Fortran.
    #[test]
    fn c_model_is_a_superset(cfg in arb_config(), seed in 0u64..500) {
        let block = random_block(&cfg, &mut Pcg32::seed_from_u64(seed));
        let fortran = build_dag(&block, AliasModel::Fortran);
        let c = build_dag(&block, AliasModel::CConservative);
        prop_assert!(c.edge_count() >= fortran.edge_count());
        for e in fortran.edges() {
            prop_assert!(c.has_edge(e.from, e.to), "C model lost {e:?}");
        }
    }
}
