//! Instruction-level processor simulator (paper §4.3–4.4).
//!
//! Simulates the execution of one scheduled basic block on a single-issue
//! processor with **non-blocking loads** and **hardware interlocks**:
//! every instruction executes in one cycle except loads, whose latency is
//! drawn from a [`bsched_memsim::LatencyModel`]; an instruction whose
//! operands are not ready stalls the processor, and each stall cycle is
//! counted as an *interlock*. A program's runtime is therefore exactly
//! `instructions + interlocks`, the decomposition Tables 3 and 5 report.
//!
//! Three processor models control how much load-level parallelism the
//! hardware can exploit (§4.4):
//!
//! * [`ProcessorModel::Unlimited`] — unbounded outstanding loads
//!   (dataflow-like upper bound);
//! * [`ProcessorModel::MaxOutstanding`]`(8)` — MAX-8: at most eight loads
//!   in flight; issuing a ninth blocks until one completes;
//! * [`ProcessorModel::MaxLength`]`(8)` — LEN-8: a load outstanding for
//!   eight cycles blocks the processor until its data returns (Tera-style).
//!
//! # Example
//!
//! ```
//! use bsched_cpusim::{simulate_block, ProcessorModel};
//! use bsched_ir::BlockBuilder;
//! use bsched_memsim::FixedLatency;
//! use bsched_stats::Pcg32;
//!
//! let mut b = BlockBuilder::new("ex");
//! let base = b.def_int("base");
//! let x = b.load("x", base, 0);
//! let _ = b.fadd("y", x, x); // consumes the load immediately
//! let block = b.finish();
//! let mut rng = Pcg32::seed_from_u64(0);
//! let r = simulate_block(&block, &FixedLatency::new(4), ProcessorModel::Unlimited, &mut rng);
//! assert_eq!(r.instructions, 3);
//! assert_eq!(r.interlocks, 3, "the add waits out the 4-cycle load");
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod processor;
pub mod result;
pub mod sim;
pub mod timeline;

pub use error::SimError;
pub use processor::ProcessorModel;
pub use result::{InterlockBreakdown, SimResult};
pub use sim::{
    simulate_block, simulate_block_custom, simulate_block_traced, simulate_block_wide,
    simulate_runs, simulate_runs_stats, simulate_runs_wide, try_simulate_runs_stats, IssueEvent,
    RunStats,
};
pub use timeline::render_timeline;
