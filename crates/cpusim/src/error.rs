//! Typed simulation failures raised by the watchdog layer.

use std::fmt;

/// Why a guarded simulation was stopped before completing.
///
/// Only the `try_` entry points ([`crate::try_simulate_runs_stats`])
/// return these; the classic entry points preserve their infallible
/// signatures by running with an unlimited budget and no cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// A single run's issue clock passed the per-run cycle budget — the
    /// simulation was runaway (e.g. an injected stall fault) and was
    /// killed rather than left to spin.
    BudgetExceeded {
        /// The configured per-run budget, in cycles.
        budget: u64,
        /// The cycle the run had reached when it was killed.
        cycle: u64,
    },
    /// The thread's [`bsched_faults::CancelToken`] tripped between runs
    /// — a wall-clock watchdog gave up on this cell.
    Cancelled,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::BudgetExceeded { budget, cycle } => write!(
                f,
                "cycle budget exceeded: run reached cycle {cycle} with a budget of {budget}"
            ),
            SimError::Cancelled => write!(f, "simulation cancelled by watchdog"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_numbers() {
        let e = SimError::BudgetExceeded {
            budget: 100,
            cycle: 250,
        };
        let s = e.to_string();
        assert!(s.contains("100") && s.contains("250"), "{s}");
        assert!(SimError::Cancelled.to_string().contains("cancelled"));
    }
}
