//! Processor models (paper §4.4).

use std::fmt;

/// How the processor limits outstanding non-blocking loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProcessorModel {
    /// UNLIMITED: any number of loads may be in flight. "Similar to
    /// theoretical dataflow machines … it exposes the maximum benefit
    /// that processor parallelism can achieve."
    #[default]
    Unlimited,
    /// MAX-k: at most `k` loads simultaneously executing; issuing one
    /// more blocks until an outstanding load completes. The paper's
    /// MAX-8 is `MaxOutstanding(8)`.
    MaxOutstanding(u32),
    /// LEN-k: a load outstanding for `k` cycles blocks the processor
    /// until its data returns, as in the Tera. The paper's LEN-8 is
    /// `MaxLength(8)`.
    MaxLength(u32),
}

impl ProcessorModel {
    /// The paper's MAX-8 configuration.
    #[must_use]
    pub fn max_8() -> Self {
        ProcessorModel::MaxOutstanding(8)
    }

    /// The paper's LEN-8 configuration.
    #[must_use]
    pub fn len_8() -> Self {
        ProcessorModel::MaxLength(8)
    }

    /// The three processor models evaluated in the paper, in table order.
    #[must_use]
    pub fn paper_models() -> [ProcessorModel; 3] {
        [
            ProcessorModel::Unlimited,
            ProcessorModel::max_8(),
            ProcessorModel::len_8(),
        ]
    }

    /// The paper's display name for this model.
    #[must_use]
    pub fn paper_name(&self) -> String {
        match self {
            ProcessorModel::Unlimited => "UNLIMITED".to_owned(),
            ProcessorModel::MaxOutstanding(k) => format!("MAX-{k}"),
            ProcessorModel::MaxLength(k) => format!("LEN-{k}"),
        }
    }
}

impl fmt::Display for ProcessorModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        assert_eq!(ProcessorModel::Unlimited.paper_name(), "UNLIMITED");
        assert_eq!(ProcessorModel::max_8().paper_name(), "MAX-8");
        assert_eq!(ProcessorModel::len_8().paper_name(), "LEN-8");
        assert_eq!(ProcessorModel::MaxOutstanding(4).to_string(), "MAX-4");
    }

    #[test]
    fn paper_models_in_order() {
        let models = ProcessorModel::paper_models();
        assert_eq!(models[0], ProcessorModel::Unlimited);
        assert_eq!(models[1], ProcessorModel::MaxOutstanding(8));
        assert_eq!(models[2], ProcessorModel::MaxLength(8));
    }

    #[test]
    fn default_is_unlimited() {
        assert_eq!(ProcessorModel::default(), ProcessorModel::Unlimited);
    }
}
