//! Simulation results.

use std::fmt;
use std::ops::Add;

/// Why the processor stalled, cycle by cycle.
///
/// The paper reports only the total interlock percentage (TI%/BI% in
/// Tables 3 and 5); the breakdown is extra instrumentation useful when
/// analysing why a schedule under a restricted processor model loses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InterlockBreakdown {
    /// Stalls waiting for a source operand (the common case).
    pub operand: u64,
    /// Stalls because the MAX-k outstanding-load limit was hit.
    pub max_outstanding: u64,
    /// Stalls because a load exceeded the LEN-k age limit.
    pub max_length: u64,
}

impl InterlockBreakdown {
    /// Total stall cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.operand + self.max_outstanding + self.max_length
    }
}

impl Add for InterlockBreakdown {
    type Output = InterlockBreakdown;

    fn add(self, rhs: InterlockBreakdown) -> InterlockBreakdown {
        InterlockBreakdown {
            operand: self.operand + rhs.operand,
            max_outstanding: self.max_outstanding + rhs.max_outstanding,
            max_length: self.max_length + rhs.max_length,
        }
    }
}

/// The outcome of simulating one basic block once.
///
/// §5: "All of our instructions execute in a single cycle; therefore the
/// runtime of a program is the sum of the number of instructions executed
/// and the number of interlocks incurred."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimResult {
    /// Instructions issued.
    pub instructions: u64,
    /// Interlock (stall) cycles.
    pub interlocks: u64,
    /// Stall attribution.
    pub breakdown: InterlockBreakdown,
}

impl SimResult {
    /// Total execution time in cycles.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.instructions + self.interlocks
    }

    /// Fraction of cycles that were interlocks (the TI%/BI% statistic of
    /// Tables 3 and 5). Zero for an empty block.
    #[must_use]
    pub fn interlock_fraction(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.interlocks as f64 / self.cycles() as f64
        }
    }
}

impl Add for SimResult {
    type Output = SimResult;

    fn add(self, rhs: SimResult) -> SimResult {
        SimResult {
            instructions: self.instructions + rhs.instructions,
            interlocks: self.interlocks + rhs.interlocks,
            breakdown: self.breakdown + rhs.breakdown,
        }
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cycles ({} instructions + {} interlocks, {:.1}% interlock)",
            self.cycles(),
            self.instructions,
            self.interlocks,
            self.interlock_fraction() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_is_sum() {
        let r = SimResult {
            instructions: 10,
            interlocks: 3,
            breakdown: InterlockBreakdown::default(),
        };
        assert_eq!(r.cycles(), 13);
        assert!((r.interlock_fraction() - 3.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn empty_result_has_zero_fraction() {
        assert_eq!(SimResult::default().interlock_fraction(), 0.0);
    }

    #[test]
    fn addition_accumulates() {
        let a = SimResult {
            instructions: 5,
            interlocks: 2,
            breakdown: InterlockBreakdown {
                operand: 2,
                ..Default::default()
            },
        };
        let b = SimResult {
            instructions: 7,
            interlocks: 4,
            breakdown: InterlockBreakdown {
                operand: 1,
                max_outstanding: 3,
                ..Default::default()
            },
        };
        let c = a + b;
        assert_eq!(c.instructions, 12);
        assert_eq!(c.interlocks, 6);
        assert_eq!(c.breakdown.operand, 3);
        assert_eq!(c.breakdown.max_outstanding, 3);
        assert_eq!(c.breakdown.total(), 6);
    }

    #[test]
    fn display_mentions_components() {
        let r = SimResult {
            instructions: 4,
            interlocks: 1,
            breakdown: InterlockBreakdown::default(),
        };
        let s = r.to_string();
        assert!(s.contains("5 cycles"));
        assert!(s.contains("4 instructions"));
    }
}
