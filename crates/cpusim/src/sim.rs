//! The cycle-level simulation loop.

use std::collections::HashMap;

use bsched_faults::{fault_point, Site};
use bsched_ir::{BasicBlock, InstId, OpLatencies, Reg};
use bsched_memsim::LatencyModel;
use bsched_stats::Pcg32;

use crate::error::SimError;
use crate::processor::ProcessorModel;
use crate::result::{InterlockBreakdown, SimResult};

/// One issued instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueEvent {
    /// The instruction.
    pub id: InstId,
    /// Cycle at which it issued.
    pub issue_cycle: u64,
    /// For loads, the sampled completion cycle; for others, issue + 1.
    pub complete_cycle: u64,
    /// Interlock cycles charged immediately before this issue.
    pub stall_cycles: u64,
}

impl IssueEvent {
    /// Cycles from issue to completion — a load's sampled latency, 1 for
    /// anything else.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.complete_cycle.saturating_sub(self.issue_cycle)
    }
}

/// An in-flight load.
#[derive(Debug, Clone, Copy)]
struct Outstanding {
    issued: u64,
    completes: u64,
}

/// Simulates one execution of `block` in its current instruction order.
///
/// The model (§4.3): single-issue, in-order, one instruction per cycle;
/// non-load results are available the cycle after issue; loads complete
/// `latency` cycles after issue, where the latency of every dynamic load
/// is an independent draw from `mem`. An instruction whose source
/// operands are not yet available stalls the processor (hardware
/// interlock); the processor-model constraints add further stalls.
///
/// Store/load consistency (§4.4) holds structurally: the scheduler never
/// reorders conflicting memory accesses, stores retire into an ideal
/// write buffer at issue, and a later load to the same address forwards
/// from that buffer — so no extra stall cycles arise from consistency.
///
/// Virtual no-ops, if any survived scheduling, are skipped: "the virtual
/// no-ops are removed before actual code generation" (§4.1).
#[must_use]
pub fn simulate_block(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    rng: &mut Pcg32,
) -> SimResult {
    simulate_inner(block, mem, model, 1, rng, None).0
}

/// Like [`simulate_block`], also returning the per-instruction trace.
#[must_use]
pub fn simulate_block_traced(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    rng: &mut Pcg32,
) -> (SimResult, Vec<IssueEvent>) {
    let mut trace = Vec::with_capacity(block.len());
    let (result, _) = simulate_inner(block, mem, model, 1, rng, Some(&mut trace));
    (result, trace)
}

/// §6 extension: an in-order superscalar that issues up to `width`
/// instructions per cycle. Results still appear one cycle after issue
/// (loads: after their sampled latency), so same-cycle dependent pairs
/// split across cycles exactly as on real in-order multi-issue machines.
///
/// Returns the per-instruction accounting plus the **elapsed** cycle
/// count — with `width > 1`, elapsed time is less than
/// `instructions + interlocks` because slots overlap. With `width = 1`
/// the elapsed count equals [`SimResult::cycles`].
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn simulate_block_wide(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    rng: &mut Pcg32,
) -> (SimResult, u64) {
    simulate_block_custom(block, mem, model, width, OpLatencies::unit(), rng)
}

/// The fully configurable simulation entry point: issue `width`, plus
/// fixed multi-cycle latencies for non-load opcodes (§6's asynchronous
/// FP units — an `fdiv`'s result becomes available `op_latencies`
/// cycles after issue instead of 1).
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn simulate_block_custom(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    op_latencies: OpLatencies,
    rng: &mut Pcg32,
) -> (SimResult, u64) {
    assert!(width >= 1, "issue width must be at least 1");
    simulate_inner_custom(block, mem, model, width, op_latencies, rng, None)
}

/// Runs `runs` independent simulations (fresh latency draws each run,
/// split deterministically from `rng`) and returns each run's total
/// cycle count — the raw samples the §4.3 bootstrap consumes.
#[must_use]
pub fn simulate_runs(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    runs: u32,
    rng: &Pcg32,
) -> Vec<f64> {
    simulate_runs_wide(block, mem, model, 1, runs, rng)
}

/// [`simulate_runs`] on a `width`-issue processor; samples are the
/// **elapsed** cycle counts.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn simulate_runs_wide(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    runs: u32,
    rng: &Pcg32,
) -> Vec<f64> {
    simulate_runs_stats(block, mem, model, width, runs, rng).elapsed
}

/// Per-run samples from one batch of independent simulations: everything
/// the §4.3 measurement protocol consumes, produced in a **single**
/// simulation pass per run.
///
/// Run `r` draws its latencies from `rng.split(r)`, exactly as
/// [`simulate_runs_wide`] does, so `elapsed` is bit-identical to that
/// function's output and `interlocks` comes for free from the same runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Elapsed cycles per run (equals `instructions + interlocks` at
    /// issue width 1; less when slots overlap on a wider machine).
    pub elapsed: Vec<f64>,
    /// Interlock cycles per run.
    pub interlocks: Vec<f64>,
}

impl RunStats {
    /// Mean interlock cycles across the batch (0 for an empty batch).
    #[must_use]
    pub fn mean_interlocks(&self) -> f64 {
        if self.interlocks.is_empty() {
            0.0
        } else {
            self.interlocks.iter().sum::<f64>() / self.interlocks.len() as f64
        }
    }
}

/// Runs `runs` independent simulations and returns both the elapsed
/// cycle count and the interlock count of every run.
///
/// This is the single-pass batch entry point: callers that need runtimes
/// *and* interlock accounting (the §4.3 protocol reports both) must not
/// simulate twice — each `(block, run)` pair is simulated exactly once
/// here.
///
/// # Panics
///
/// Panics if `width` is zero.
#[must_use]
pub fn simulate_runs_stats(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    runs: u32,
    rng: &Pcg32,
) -> RunStats {
    assert!(width >= 1, "issue width must be at least 1");
    let mut elapsed = Vec::with_capacity(runs as usize);
    let mut interlocks = Vec::with_capacity(runs as usize);
    for r in 0..runs {
        let mut run_rng = rng.split(u64::from(r));
        let (result, cycles) = simulate_block_wide(block, mem, model, width, &mut run_rng);
        elapsed.push(cycles as f64);
        interlocks.push(result.interlocks as f64);
    }
    RunStats {
        elapsed,
        interlocks,
    }
}

/// Watchdog-guarded [`simulate_runs_stats`]: identical samples on the
/// happy path (bit for bit — same `rng.split` schedule), but each run is
/// bounded by a per-run cycle `budget` and the batch checks the thread's
/// cancellation token between runs.
///
/// `budget: None` means unlimited. A run whose issue clock passes the
/// budget fails the whole batch with [`SimError::BudgetExceeded`]; a
/// tripped [`bsched_faults::CancelToken`] fails it with
/// [`SimError::Cancelled`].
///
/// # Errors
///
/// See above — the two [`SimError`] variants.
///
/// # Panics
///
/// Panics if `width` is zero.
pub fn try_simulate_runs_stats(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    runs: u32,
    budget: Option<u64>,
    rng: &Pcg32,
) -> Result<RunStats, SimError> {
    assert!(width >= 1, "issue width must be at least 1");
    let budget = budget.unwrap_or(u64::MAX);
    let mut elapsed = Vec::with_capacity(runs as usize);
    let mut interlocks = Vec::with_capacity(runs as usize);
    for r in 0..runs {
        if bsched_faults::cancelled() {
            return Err(SimError::Cancelled);
        }
        let mut run_rng = rng.split(u64::from(r));
        let (result, cycles) = simulate_inner_guarded(
            block,
            mem,
            model,
            width,
            OpLatencies::unit(),
            &mut run_rng,
            None,
            budget,
        )?;
        elapsed.push(cycles as f64);
        interlocks.push(result.interlocks as f64);
    }
    Ok(RunStats {
        elapsed,
        interlocks,
    })
}

/// Maps a symbolic memory location to a flat simulated address: each
/// region gets a 16 GiB band, offsets (possibly negative, e.g. `a[-1]`)
/// land inside it. Unknown offsets map to `None` so address-aware models
/// treat them as unpredictable.
fn address_of(inst: &bsched_ir::Inst) -> Option<u64> {
    let access = inst.mem()?;
    let offset = access.loc().offset()?;
    let base = (u64::from(access.loc().region().raw()) + 1) << 34;
    Some(base.wrapping_add_signed(offset))
}

fn simulate_inner(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    rng: &mut Pcg32,
    trace: Option<&mut Vec<IssueEvent>>,
) -> (SimResult, u64) {
    simulate_inner_custom(block, mem, model, width, OpLatencies::unit(), rng, trace)
}

fn simulate_inner_custom(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    op_latencies: OpLatencies,
    rng: &mut Pcg32,
    trace: Option<&mut Vec<IssueEvent>>,
) -> (SimResult, u64) {
    simulate_inner_guarded(block, mem, model, width, op_latencies, rng, trace, u64::MAX)
        .expect("an unlimited budget cannot be exceeded")
}

/// The single simulation loop. `budget` bounds one run's issue clock:
/// the moment an instruction's issue cycle passes it the run aborts with
/// [`SimError::BudgetExceeded`]. Every public infallible entry point
/// calls this with `budget = u64::MAX`, which can never trip.
#[allow(clippy::too_many_arguments)]
fn simulate_inner_guarded(
    block: &BasicBlock,
    mem: &dyn LatencyModel,
    model: ProcessorModel,
    width: u32,
    op_latencies: OpLatencies,
    rng: &mut Pcg32,
    mut trace: Option<&mut Vec<IssueEvent>>,
    budget: u64,
) -> Result<(SimResult, u64), SimError> {
    mem.begin_run();
    // Hoisted so the fault hooks cost one relaxed load per run, not one
    // per instruction, when no plan is installed.
    let faults_on = bsched_faults::active();
    let mut reg_ready: HashMap<Reg, u64> = HashMap::new();
    let mut outstanding: Vec<Outstanding> = Vec::new();
    let mut breakdown = InterlockBreakdown::default();
    let mut cycle: u64 = 0;
    let mut slots_used: u32 = 0;
    let mut instructions: u64 = 0;

    for (id, inst) in block.iter_ids() {
        if inst.opcode().is_vnop() {
            continue;
        }
        let earliest = cycle;

        // Operand readiness (register scoreboard).
        let operand_ready = inst
            .uses()
            .iter()
            .map(|u| reg_ready.get(u).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let mut issue = earliest.max(operand_ready);
        breakdown.operand += issue - earliest;

        // Injected processor stall: the machine simply loses `arg`
        // cycles before this issue (watchdog fodder — large stalls trip
        // the cycle budget below).
        if faults_on {
            if let Some(fault) = fault_point!(Site::SimStall) {
                let stall = fault.arg.clamp(1, 1 << 50);
                issue = issue.saturating_add(stall);
                breakdown.operand = breakdown.operand.saturating_add(stall);
            }
        }

        // Processor-model constraints.
        match model {
            ProcessorModel::Unlimited => {}
            ProcessorModel::MaxOutstanding(k) => {
                if inst.is_load() {
                    outstanding.retain(|o| o.completes > issue);
                    if outstanding.len() >= k as usize {
                        // Block until enough outstanding loads complete.
                        let mut completions: Vec<u64> =
                            outstanding.iter().map(|o| o.completes).collect();
                        completions.sort_unstable();
                        let free_at = completions[outstanding.len() - k as usize];
                        if free_at > issue {
                            breakdown.max_outstanding += free_at - issue;
                            issue = free_at;
                        }
                        outstanding.retain(|o| o.completes > issue);
                    }
                }
            }
            ProcessorModel::MaxLength(k) => {
                // The processor cannot execute past `issued + k` while a
                // load is still outstanding: each such load creates a
                // blocked interval [issued + k, completes).
                loop {
                    let barrier = outstanding
                        .iter()
                        .filter(|o| issue >= o.issued + u64::from(k) && issue < o.completes)
                        .map(|o| o.completes)
                        .max();
                    match barrier {
                        Some(c) if c > issue => {
                            breakdown.max_length += c - issue;
                            issue = c;
                        }
                        _ => break,
                    }
                }
                outstanding.retain(|o| o.completes > issue);
            }
        }

        if issue > budget {
            return Err(SimError::BudgetExceeded {
                budget,
                cycle: issue,
            });
        }

        // Issue.
        let complete = if inst.is_load() {
            let mut latency = mem.sample_at(address_of(inst), rng).max(1);
            // Adversarial jitter stays inside the model's declared
            // support, so the timeline validator's bounds still hold —
            // the *number* changes, never the invariant.
            if faults_on {
                if let Some(fault) = fault_point!(Site::LatencyJitter) {
                    latency = bsched_faults::jitter_latency(
                        latency,
                        fault.arg,
                        mem.min_latency(),
                        mem.max_latency(),
                    );
                }
            }
            let complete = issue.saturating_add(latency);
            outstanding.push(Outstanding {
                issued: issue,
                completes: complete,
            });
            complete
        } else {
            issue + u64::from(op_latencies.latency(inst.opcode()))
        };
        for &d in inst.defs() {
            reg_ready.insert(d, complete);
        }
        if let Some(t) = trace.as_deref_mut() {
            t.push(IssueEvent {
                id,
                issue_cycle: issue,
                complete_cycle: complete,
                stall_cycles: issue - earliest,
            });
        }
        instructions += 1;
        // Advance the issue clock: `width` slots per cycle.
        if issue > cycle {
            cycle = issue;
            slots_used = 0;
        }
        slots_used += 1;
        if slots_used >= width {
            cycle += 1;
            slots_used = 0;
        }
    }

    let elapsed = cycle + u64::from(slots_used > 0);
    Ok((
        SimResult {
            instructions,
            interlocks: breakdown.total(),
            breakdown,
        },
        elapsed,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bsched_ir::BlockBuilder;
    use bsched_memsim::{FixedLatency, MemorySystem, NetworkModel};

    /// base; k independent loads; an add consuming the last load.
    fn block_with_loads(k: usize) -> BasicBlock {
        let mut b = BlockBuilder::new("t");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let mut last = None;
        for i in 0..k {
            last = Some(b.load_region("l", region, base, Some(8 * i as i64)));
        }
        if let Some(v) = last {
            let _ = b.fadd("use", v, v);
        }
        b.finish()
    }

    #[test]
    fn alu_only_block_has_no_interlocks() {
        let mut b = BlockBuilder::new("alu");
        let c = b.fconst("c", 1.0);
        let d = b.fadd("d", c, c);
        let _ = b.fmul("e", d, d);
        let block = b.finish();
        let mut rng = Pcg32::seed_from_u64(0);
        let r = simulate_block(
            &block,
            &FixedLatency::new(9),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        assert_eq!(r.instructions, 3);
        assert_eq!(r.interlocks, 0, "single-cycle chain never stalls");
        assert_eq!(r.cycles(), 3);
    }

    #[test]
    fn immediate_use_stalls_for_latency() {
        // load at cycle 1 (after base at 0); use at cycle 2 nominally but
        // data arrives at 1 + λ: stall λ − 1.
        let block = block_with_loads(1);
        for lambda in 1..8u64 {
            let mut rng = Pcg32::seed_from_u64(0);
            let r = simulate_block(
                &block,
                &FixedLatency::new(lambda),
                ProcessorModel::Unlimited,
                &mut rng,
            );
            assert_eq!(r.interlocks, lambda - 1, "λ={lambda}");
            assert_eq!(r.breakdown.operand, lambda - 1);
        }
    }

    #[test]
    fn independent_loads_overlap_under_unlimited() {
        // 16 independent loads of latency 10, then one use of the last:
        // loads pipeline one per cycle; only the final use stalls.
        let block = block_with_loads(16);
        let mut rng = Pcg32::seed_from_u64(0);
        let r = simulate_block(
            &block,
            &FixedLatency::new(10),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        // base@0, loads @1..=16, last completes at 16+10=26, use stalls
        // from 17 to 26: 9 interlocks.
        assert_eq!(r.instructions, 18);
        assert_eq!(r.interlocks, 9);
    }

    #[test]
    fn max_outstanding_blocks_extra_loads() {
        // With MAX-2 and latency 10, the third load must wait for the
        // first to complete.
        let block = block_with_loads(4);
        let mut rng = Pcg32::seed_from_u64(0);
        let unlimited = simulate_block(
            &block,
            &FixedLatency::new(10),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        let mut rng = Pcg32::seed_from_u64(0);
        let max2 = simulate_block(
            &block,
            &FixedLatency::new(10),
            ProcessorModel::MaxOutstanding(2),
            &mut rng,
        );
        assert!(max2.cycles() > unlimited.cycles());
        assert!(max2.breakdown.max_outstanding > 0);
        // Exact accounting: base@0; l1@1 completes 11; l2@2 completes 12;
        // l3 wants cycle 3 but both slots are busy → blocked until 11
        // (8 stall cycles), completes 21; l4 wants 12, one slot free →
        // issues immediately; the final use waits on l4 (operand stall).
        assert_eq!(max2.breakdown.max_outstanding, 8);
        assert_eq!(max2.breakdown.operand, 22 - 13);
    }

    #[test]
    fn max_length_blocks_old_loads() {
        // LEN-2 with latency 10: after a load is 2 cycles old the CPU
        // stalls until its data returns.
        let block = block_with_loads(3);
        let mut rng = Pcg32::seed_from_u64(0);
        let r = simulate_block(
            &block,
            &FixedLatency::new(10),
            ProcessorModel::MaxLength(2),
            &mut rng,
        );
        assert!(r.breakdown.max_length > 0);
        // base@0; l1@1 (completes 11); l2@2; l3 would issue at 3 = l1.issued+2
        // → blocked until 11. l3@11 completes 21; l2 completed 12 < 11? no:
        // l2 issued 2, completes 12; at cycle 11 l2 is 9 ≥ 2 cycles old…
        // after unblocking at 11, l2 still outstanding and 11 ≥ 2+2 → block
        // to 12. l3@12, completes 22; use at 13 ≥ 12+2? l3 outstanding, age
        // 1 < 2 → operand stall until 22.
        let mut rng = Pcg32::seed_from_u64(0);
        let unlimited = simulate_block(
            &block,
            &FixedLatency::new(10),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        assert!(r.cycles() > unlimited.cycles());
    }

    #[test]
    fn len_model_with_short_latency_never_blocks() {
        let block = block_with_loads(6);
        let mut rng = Pcg32::seed_from_u64(0);
        let r = simulate_block(
            &block,
            &FixedLatency::new(2),
            ProcessorModel::MaxLength(8),
            &mut rng,
        );
        assert_eq!(r.breakdown.max_length, 0);
    }

    #[test]
    fn vnops_are_skipped() {
        use bsched_ir::{Inst, Opcode};
        let mut b = BlockBuilder::new("v");
        let _ = b.def_int("x");
        b.push(Inst::new(Opcode::VNop, vec![], vec![], None));
        let block = b.finish();
        let mut rng = Pcg32::seed_from_u64(0);
        let r = simulate_block(
            &block,
            &FixedLatency::new(1),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        assert_eq!(r.instructions, 1, "vnop not counted");
    }

    #[test]
    fn traced_simulation_matches_untr() {
        let block = block_with_loads(4);
        let mut rng = Pcg32::seed_from_u64(5);
        let plain = simulate_block(
            &block,
            &FixedLatency::new(5),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        let mut rng = Pcg32::seed_from_u64(5);
        let (traced, events) = simulate_block_traced(
            &block,
            &FixedLatency::new(5),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        assert_eq!(plain, traced);
        assert_eq!(events.len(), 6);
        assert!(events
            .windows(2)
            .all(|w| w[0].issue_cycle < w[1].issue_cycle));
        assert_eq!(
            events.iter().map(|e| e.stall_cycles).sum::<u64>(),
            traced.interlocks
        );
    }

    #[test]
    fn simulate_runs_is_deterministic_per_seed() {
        let block = block_with_loads(8);
        let mem: MemorySystem = NetworkModel::new(3.0, 2.0).into();
        let rng = Pcg32::seed_from_u64(100);
        let a = simulate_runs(&block, &mem, ProcessorModel::Unlimited, 30, &rng);
        let b = simulate_runs(&block, &mem, ProcessorModel::Unlimited, 30, &rng);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        // Stochastic latencies: runs should not all coincide.
        assert!(a.iter().any(|&x| x != a[0]));
    }

    #[test]
    fn runs_stats_single_pass_matches_separate_passes() {
        // The batch entry point must reproduce, bit for bit, both the
        // elapsed samples of `simulate_runs_wide` and the interlocks a
        // separate per-run `simulate_block` pass would have counted.
        let block = block_with_loads(8);
        let mem: MemorySystem = NetworkModel::new(3.0, 2.0).into();
        let rng = Pcg32::seed_from_u64(42);
        let stats = simulate_runs_stats(&block, &mem, ProcessorModel::Unlimited, 1, 30, &rng);
        let elapsed = simulate_runs(&block, &mem, ProcessorModel::Unlimited, 30, &rng);
        assert_eq!(stats.elapsed, elapsed);
        let interlocks: Vec<f64> = (0..30u32)
            .map(|r| {
                let mut run_rng = rng.split(u64::from(r));
                simulate_block(&block, &mem, ProcessorModel::Unlimited, &mut run_rng).interlocks
                    as f64
            })
            .collect();
        assert_eq!(stats.interlocks, interlocks);
        let mean = interlocks.iter().sum::<f64>() / 30.0;
        assert_eq!(stats.mean_interlocks(), mean);
    }

    #[test]
    fn runs_stats_empty_batch() {
        let block = block_with_loads(1);
        let rng = Pcg32::seed_from_u64(0);
        let stats = simulate_runs_stats(
            &block,
            &FixedLatency::new(2),
            ProcessorModel::Unlimited,
            1,
            0,
            &rng,
        );
        assert!(stats.elapsed.is_empty());
        assert_eq!(stats.mean_interlocks(), 0.0);
    }

    #[test]
    fn stochastic_runs_average_near_expectation() {
        // A single load immediately used: expected stalls = E[λ] − 1.
        let block = block_with_loads(1);
        let mem: MemorySystem = NetworkModel::new(5.0, 2.0).into();
        let rng = Pcg32::seed_from_u64(7);
        let runs = simulate_runs(&block, &mem, ProcessorModel::Unlimited, 2000, &rng);
        let mean_cycles = runs.iter().sum::<f64>() / runs.len() as f64;
        // 3 instructions + (E[λ]−1) stalls.
        let expected = 3.0
            + (bsched_memsim::LatencyModel::effective_latency(&NetworkModel::new(5.0, 2.0)) - 1.0);
        assert!(
            (mean_cycles - expected).abs() < 0.15,
            "{mean_cycles} vs {expected}"
        );
    }

    #[test]
    fn empty_block() {
        let block = BasicBlock::new("e", vec![]);
        let mut rng = Pcg32::seed_from_u64(0);
        let r = simulate_block(
            &block,
            &FixedLatency::new(3),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        assert_eq!(r.cycles(), 0);
    }

    #[test]
    fn dual_issue_halves_alu_runtime() {
        // Six independent FP constants: width 1 → 6 cycles, width 2 → 3.
        let mut b = BlockBuilder::new("wide");
        for k in 0..6 {
            let _ = b.fconst(&format!("c{k}"), f64::from(k));
        }
        let block = b.finish();
        let mut rng = Pcg32::seed_from_u64(0);
        let (w1, e1) = simulate_block_wide(
            &block,
            &FixedLatency::new(1),
            ProcessorModel::Unlimited,
            1,
            &mut rng,
        );
        let (w2, e2) = simulate_block_wide(
            &block,
            &FixedLatency::new(1),
            ProcessorModel::Unlimited,
            2,
            &mut rng,
        );
        let (_, e6) = simulate_block_wide(
            &block,
            &FixedLatency::new(1),
            ProcessorModel::Unlimited,
            6,
            &mut rng,
        );
        assert_eq!(e1, 6);
        assert_eq!(e2, 3);
        assert_eq!(e6, 1, "fully parallel block issues in one cycle at width 6");
        assert_eq!(w2.interlocks, 0);
        assert_eq!(
            w1,
            simulate_block(
                &block,
                &FixedLatency::new(1),
                ProcessorModel::Unlimited,
                &mut rng
            ),
            "width 1 ≡ single issue"
        );
        assert_eq!(
            e1,
            w1.cycles(),
            "width-1 elapsed matches the paper's accounting"
        );
    }

    #[test]
    fn dual_issue_respects_data_dependences() {
        // A dependent chain cannot dual-issue: each result is available
        // the cycle after issue, so three chained adds take three cycles
        // even at width 4.
        let mut b = BlockBuilder::new("chain");
        let c = b.fconst("c", 1.0);
        let d = b.fadd("d", c, c);
        let _ = b.fadd("e", d, d);
        let block = b.finish();
        let mut rng = Pcg32::seed_from_u64(0);
        let (r, elapsed) = simulate_block_wide(
            &block,
            &FixedLatency::new(1),
            ProcessorModel::Unlimited,
            4,
            &mut rng,
        );
        assert_eq!(elapsed, 3);
        assert_eq!(r.breakdown.operand, 2, "two one-cycle waits on the chain");
    }

    #[test]
    #[should_panic(expected = "issue width must be at least 1")]
    fn zero_width_panics() {
        let block = BasicBlock::new("e", vec![]);
        let mut rng = Pcg32::seed_from_u64(0);
        let _ = simulate_block_wide(
            &block,
            &FixedLatency::new(1),
            ProcessorModel::Unlimited,
            0,
            &mut rng,
        );
    }

    /// Fault-plan tests share the process-global plan registry; keep
    /// them serialized and keyed to a context no other test uses.
    static FAULT_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        FAULT_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn guarded_runs_match_unguarded_bit_for_bit() {
        let block = block_with_loads(8);
        let mem: MemorySystem = NetworkModel::new(3.0, 2.0).into();
        let rng = Pcg32::seed_from_u64(42);
        let plain = simulate_runs_stats(&block, &mem, ProcessorModel::Unlimited, 1, 30, &rng);
        let guarded =
            try_simulate_runs_stats(&block, &mem, ProcessorModel::Unlimited, 1, 30, None, &rng)
                .unwrap();
        assert_eq!(plain, guarded);
    }

    #[test]
    fn budget_kills_a_runaway_run() {
        let block = block_with_loads(1);
        let rng = Pcg32::seed_from_u64(0);
        let err = try_simulate_runs_stats(
            &block,
            &FixedLatency::new(10),
            ProcessorModel::Unlimited,
            1,
            5,
            Some(1),
            &rng,
        )
        .unwrap_err();
        assert!(
            matches!(err, crate::SimError::BudgetExceeded { budget: 1, .. }),
            "{err:?}"
        );
        // A budget the block fits under changes nothing.
        let ok = try_simulate_runs_stats(
            &block,
            &FixedLatency::new(10),
            ProcessorModel::Unlimited,
            1,
            5,
            Some(1_000),
            &rng,
        )
        .unwrap();
        assert_eq!(ok.elapsed.len(), 5);
    }

    #[test]
    fn cancelled_token_stops_the_batch() {
        let block = block_with_loads(2);
        let rng = Pcg32::seed_from_u64(0);
        let token = bsched_faults::CancelToken::new();
        token.cancel();
        let err = bsched_faults::with_cancel_token(token, || {
            try_simulate_runs_stats(
                &block,
                &FixedLatency::new(2),
                ProcessorModel::Unlimited,
                1,
                5,
                None,
                &rng,
            )
        })
        .unwrap_err();
        assert_eq!(err, crate::SimError::Cancelled);
    }

    #[test]
    fn injected_stall_trips_the_budget() {
        use bsched_faults::{FaultPlan, FaultSpec, Site};
        let _g = fault_lock();
        let block = block_with_loads(2);
        let rng = Pcg32::seed_from_u64(0);
        bsched_faults::install(
            FaultPlan::seeded(1).with(FaultSpec::always(Site::SimStall).with_key("__chaos__")),
        );
        let err = bsched_faults::with_cell_context("__chaos__", 0, || {
            try_simulate_runs_stats(
                &block,
                &FixedLatency::new(2),
                ProcessorModel::Unlimited,
                1,
                3,
                Some(1_000_000),
                &rng,
            )
        })
        .unwrap_err();
        bsched_faults::clear();
        assert!(
            matches!(err, crate::SimError::BudgetExceeded { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn injected_jitter_is_clamped_to_the_declared_support() {
        use bsched_faults::{FaultPlan, FaultSpec, Site};
        let _g = fault_lock();
        let block = block_with_loads(4);
        let rng = Pcg32::seed_from_u64(9);
        // Point support: jitter must clamp back to the fixed latency, so
        // the perturbed run is bit-identical to the clean one.
        let clean = simulate_runs_stats(
            &block,
            &FixedLatency::new(7),
            ProcessorModel::Unlimited,
            1,
            10,
            &rng,
        );
        bsched_faults::install(
            FaultPlan::seeded(3).with(FaultSpec::always(Site::LatencyJitter).with_key("__chaos__")),
        );
        let jittered = bsched_faults::with_cell_context("__chaos__", 0, || {
            try_simulate_runs_stats(
                &block,
                &FixedLatency::new(7),
                ProcessorModel::Unlimited,
                1,
                10,
                None,
                &rng,
            )
        })
        .unwrap();
        // Unbounded support: jitter slows the runs down.
        let mem: MemorySystem = NetworkModel::new(3.0, 2.0).into();
        let net_clean = simulate_runs_stats(&block, &mem, ProcessorModel::Unlimited, 1, 10, &rng);
        let net_jittered = bsched_faults::with_cell_context("__chaos__", 0, || {
            try_simulate_runs_stats(&block, &mem, ProcessorModel::Unlimited, 1, 10, None, &rng)
        })
        .unwrap();
        bsched_faults::clear();
        assert_eq!(clean, jittered, "point support absorbs all jitter");
        for (c, j) in net_clean.elapsed.iter().zip(&net_jittered.elapsed) {
            assert!(j >= c, "jitter may only slow a run down: {j} < {c}");
        }
        assert_ne!(net_clean.elapsed, net_jittered.elapsed);
    }

    #[test]
    fn line_cache_sees_spatial_locality() {
        use bsched_memsim::LineCache;
        // Eight consecutive 8-byte loads in one region: 32-byte lines ⇒
        // 2 misses + 6 hits, deterministically.
        let mut b = BlockBuilder::new("stream");
        let region = b.fresh_region();
        let base = b.def_int("base");
        for k in 0..8 {
            let _ = b.load_region("l", region, base, Some(8 * k));
        }
        let block = b.finish();
        let cache = LineCache::new(32, 64, 2, 2, 10);
        let mut rng = Pcg32::seed_from_u64(0);
        let (_, events) =
            simulate_block_traced(&block, &cache, ProcessorModel::Unlimited, &mut rng);
        let latencies: Vec<u64> = events
            .iter()
            .skip(1)
            .map(|e| e.complete_cycle - e.issue_cycle)
            .collect();
        assert_eq!(latencies, vec![10, 2, 2, 2, 10, 2, 2, 2]);
    }

    #[test]
    fn line_cache_state_resets_between_runs() {
        use bsched_memsim::LineCache;
        let mut b = BlockBuilder::new("one");
        let region = b.fresh_region();
        let base = b.def_int("base");
        let _ = b.load_region("l", region, base, Some(0));
        let block = b.finish();
        let cache = LineCache::new(32, 4, 1, 2, 10);
        let rng = Pcg32::seed_from_u64(1);
        let runs = simulate_runs(&block, &cache, ProcessorModel::Unlimited, 5, &rng);
        // Every run starts cold: identical cycle counts.
        assert!(runs.iter().all(|&c| c == runs[0]), "{runs:?}");
    }

    #[test]
    fn distinct_regions_use_distinct_addresses() {
        use bsched_memsim::LineCache;
        // Loads at offset 0 of two different regions must not alias in
        // the cache line space.
        let mut b = BlockBuilder::new("two");
        let r1 = b.fresh_region();
        let r2 = b.fresh_region();
        let base = b.def_int("base");
        let _ = b.load_region("a", r1, base, Some(0));
        let _ = b.load_region("b", r2, base, Some(0));
        let _ = b.load_region("a2", r1, base, Some(0));
        let block = b.finish();
        let cache = LineCache::new(32, 64, 4, 2, 10);
        let mut rng = Pcg32::seed_from_u64(0);
        let (_, events) =
            simulate_block_traced(&block, &cache, ProcessorModel::Unlimited, &mut rng);
        let lat: Vec<u64> = events
            .iter()
            .skip(1)
            .map(|e| e.complete_cycle - e.issue_cycle)
            .collect();
        assert_eq!(
            lat,
            vec![10, 10, 2],
            "miss, miss (different region), hit (revisit)"
        );
    }
}
