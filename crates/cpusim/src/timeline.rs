//! ASCII timeline rendering of simulation traces.
//!
//! Turns the per-instruction [`IssueEvent`] trace
//! into a Gantt-style chart — the quickest way to *see* where a schedule
//! interlocks and how load latencies overlap:
//!
//! ```text
//!  id  name        0         1
//!                  0123456789012345
//!  i0  base        #
//!  i1  L0          =========>
//!  i2  L1           ....=========>
//!  i3  X4               ....#
//! ```
//!
//! `#` is a single-cycle instruction, `=`/`>` spans a load's time in the
//! memory system, and `.` marks interlock (stall) cycles charged before
//! the instruction issued.

use std::fmt::Write as _;

use bsched_ir::BasicBlock;

use crate::sim::IssueEvent;

/// Renders `events` (from [`crate::simulate_block_traced`]) against the
/// instruction names of `block`.
///
/// Events must be in issue order, as the simulator produces them.
#[must_use]
pub fn render_timeline(block: &BasicBlock, events: &[IssueEvent]) -> String {
    let mut out = String::new();
    let end = events.iter().map(|e| e.complete_cycle).max().unwrap_or(0) as usize;
    let name_width = block
        .insts()
        .iter()
        .map(|i| i.name().map_or(4, str::len))
        .max()
        .unwrap_or(4)
        .max(4);

    // Header ruler: tens line then units line.
    let _ = write!(out, "{:>4}  {:<name_width$}  ", "id", "name");
    for c in 0..=end {
        let _ = write!(
            out,
            "{}",
            if c % 10 == 0 {
                ((c / 10) % 10).to_string()
            } else {
                " ".into()
            }
        );
    }
    out.push('\n');
    let _ = write!(out, "{:>4}  {:<name_width$}  ", "", "");
    for c in 0..=end {
        let _ = write!(out, "{}", c % 10);
    }
    out.push('\n');

    for e in events {
        let inst = block.inst(e.id);
        let name = inst.name().unwrap_or("");
        let _ = write!(out, "{:>4}  {:<name_width$}  ", e.id.to_string(), name);
        let stall_start = e.issue_cycle - e.stall_cycles;
        for c in 0..=end as u64 {
            let ch = if c >= stall_start && c < e.issue_cycle {
                '.'
            } else if c == e.issue_cycle && e.complete_cycle == e.issue_cycle + 1 {
                '#'
            } else if c >= e.issue_cycle && c + 1 < e.complete_cycle {
                '='
            } else if c + 1 == e.complete_cycle && c > e.issue_cycle {
                '>'
            } else {
                ' '
            };
            out.push(ch);
        }
        // Trim trailing spaces for tidy output.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::ProcessorModel;
    use crate::sim::simulate_block_traced;
    use bsched_ir::BlockBuilder;
    use bsched_memsim::FixedLatency;
    use bsched_stats::Pcg32;

    fn traced(latency: u64) -> (BasicBlock, Vec<IssueEvent>) {
        let mut b = BlockBuilder::new("t");
        let base = b.def_int("base");
        let x = b.load("L0", base, 0);
        let _ = b.fadd("X0", x, x);
        let block = b.finish();
        let mut rng = Pcg32::seed_from_u64(0);
        let (_, events) = simulate_block_traced(
            &block,
            &FixedLatency::new(latency),
            ProcessorModel::Unlimited,
            &mut rng,
        );
        (block, events)
    }

    #[test]
    fn renders_all_instructions() {
        let (block, events) = traced(4);
        let chart = render_timeline(&block, &events);
        assert!(chart.contains("base"));
        assert!(chart.contains("L0"));
        assert!(chart.contains("X0"));
        // The load spans 4 cycles: '=' run ending in '>'.
        assert!(chart.contains("===>"), "{chart}");
        // The add stalled: dots present.
        assert!(chart.contains('.'), "{chart}");
        assert!(chart.lines().count() >= 5);
    }

    #[test]
    fn single_cycle_ops_render_hash() {
        let (block, events) = traced(1);
        let chart = render_timeline(&block, &events);
        assert!(chart.contains('#'), "{chart}");
        assert!(!chart.contains('.'), "no stalls at latency 1: {chart}");
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let block = BasicBlock::new("e", vec![]);
        let chart = render_timeline(&block, &[]);
        assert_eq!(chart.lines().count(), 2, "{chart}");
    }
}
