//! Fault plans: which sites misbehave, how often, and how hard.

use std::fmt;
use std::str::FromStr;

/// A named place in the pipeline where a fault can be injected.
///
/// Every layer of the system registers exactly one site per failure mode
/// it knows how to provoke; the kebab-case [`id`](Site::id) is the
/// stable name used in `BSCHED_FAULTS` plan specs and in cell reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Site {
    /// The kernel parser rejects its input (`bsched-workload`).
    Parse,
    /// Register allocation reports spill-pool exhaustion
    /// (`bsched-regalloc`).
    Alloc,
    /// A load's sampled latency is adversarially delayed, clamped to the
    /// memory model's declared `[min_latency, max_latency]` support
    /// (`bsched-cpusim`).
    LatencyJitter,
    /// The simulator stalls for an enormous number of cycles, tripping
    /// the per-run cycle budget (`bsched-cpusim`).
    SimStall,
    /// The cell evaluation worker panics (`bsched-bench`).
    EvalPanic,
    /// The cell evaluation sleeps, tripping the wall-clock watchdog
    /// (`bsched-bench`).
    SlowCell,
    /// The server's admission gate rejects a request as if the queue
    /// were full (`bsched-serve`).
    ServeReject,
    /// A server worker sleeps before evaluating, inflating service time
    /// and tripping per-request deadlines (`bsched-serve`).
    SlowWorker,
    /// A cache-log append writes a record with a corrupted checksum, as
    /// if the process had been killed mid-write (`bsched-serve`
    /// persistence). Recovery must truncate-and-warn, never crash.
    PersistCorrupt,
    /// The router treats a shard as unreachable without touching the
    /// socket, forcing the retry/failover path (`bsched-serve` router).
    ShardDown,
    /// A candidate evaluation in the autotuner sleeps, tripping the
    /// per-candidate wall-clock timeout (`bsched-tune`). The search must
    /// quarantine the candidate and continue, never abort.
    TuneStall,
}

impl Site {
    /// Every site, in a fixed order.
    pub const ALL: [Site; 11] = [
        Site::Parse,
        Site::Alloc,
        Site::LatencyJitter,
        Site::SimStall,
        Site::EvalPanic,
        Site::SlowCell,
        Site::ServeReject,
        Site::SlowWorker,
        Site::PersistCorrupt,
        Site::ShardDown,
        Site::TuneStall,
    ];

    /// The stable kebab-case site name.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Site::Parse => "parse-reject",
            Site::Alloc => "alloc-exhaust",
            Site::LatencyJitter => "latency-jitter",
            Site::SimStall => "sim-stall",
            Site::EvalPanic => "eval-panic",
            Site::SlowCell => "slow-cell",
            Site::ServeReject => "serve-reject",
            Site::SlowWorker => "slow-worker",
            Site::PersistCorrupt => "persist-corrupt",
            Site::ShardDown => "shard-down",
            Site::TuneStall => "tune-stall",
        }
    }

    /// Looks a site up by its [`id`](Site::id).
    #[must_use]
    pub fn from_id(id: &str) -> Option<Site> {
        Site::ALL.into_iter().find(|s| s.id() == id)
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One armed fault: a site plus firing policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// The site this spec arms.
    pub site: Site,
    /// Substring filter on the current cell context (e.g. a benchmark
    /// name); `None` matches every context, including none.
    pub key: Option<String>,
    /// Probability that a matched occurrence fires, in `[0, 1]`.
    pub rate: f64,
    /// Maximum fires per `(site, cell)`; `None` is unbounded. A limit of
    /// 1 models a *transient* fault: the first attempt fails, a retry
    /// succeeds.
    pub limit: Option<u32>,
    /// Site-specific magnitude: extra latency cycles for
    /// `latency-jitter`, stall cycles for `sim-stall`, sleep milliseconds
    /// for `slow-cell`. Each site has its own default.
    pub arg: Option<u64>,
}

impl FaultSpec {
    /// A spec that always fires at `site`, any context, no limit.
    #[must_use]
    pub fn always(site: Site) -> Self {
        Self {
            site,
            key: None,
            rate: 1.0,
            limit: None,
            arg: None,
        }
    }

    /// Restricts the spec to contexts containing `key`.
    #[must_use]
    pub fn with_key(mut self, key: impl Into<String>) -> Self {
        self.key = Some(key.into());
        self
    }

    /// Sets the per-occurrence firing probability.
    #[must_use]
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Caps fires per `(site, cell)` — `1` makes the fault transient.
    #[must_use]
    pub fn with_limit(mut self, limit: u32) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets the site-specific magnitude.
    #[must_use]
    pub fn with_arg(mut self, arg: u64) -> Self {
        self.arg = Some(arg);
        self
    }

    fn matches(&self, cell: &str) -> bool {
        match &self.key {
            Some(key) => cell.contains(key.as_str()),
            None => true,
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.site)?;
        let mut sep = ':';
        let mut opt = |f: &mut fmt::Formatter<'_>, text: String| {
            let r = write!(f, "{sep}{text}");
            sep = ',';
            r
        };
        if let Some(key) = &self.key {
            opt(f, format!("key={key}"))?;
        }
        if self.rate < 1.0 {
            opt(f, format!("rate={}", self.rate))?;
        }
        if let Some(limit) = self.limit {
            opt(f, format!("limit={limit}"))?;
        }
        if let Some(arg) = self.arg {
            opt(f, format!("arg={arg}"))?;
        }
        Ok(())
    }
}

/// A deterministic, seedable set of armed faults.
///
/// The plan is pure data: whether a given occurrence fires is a hash of
/// `(plan seed, site, cell context, occurrence index)`, so two runs with
/// the same plan, workload and thread count inject exactly the same
/// faults — chaos runs are as reproducible as clean ones.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Master seed mixed into every firing decision.
    pub seed: u64,
    /// The armed faults, in spec order (first match wins per occurrence).
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            specs: Vec::new(),
        }
    }

    /// Adds a spec.
    #[must_use]
    pub fn with(mut self, spec: FaultSpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// Specs armed for `site` that match the cell context, in order.
    pub(crate) fn matching<'a>(
        &'a self,
        site: Site,
        cell: &'a str,
    ) -> impl Iterator<Item = &'a FaultSpec> + 'a {
        self.specs
            .iter()
            .filter(move |s| s.site == site && s.matches(cell))
    }

    /// True when no spec could ever fire.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for spec in &self.specs {
            write!(f, ";{spec}")?;
        }
        Ok(())
    }
}

/// Error parsing a [`FaultPlan`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    detail: String,
}

impl PlanParseError {
    fn new(detail: impl Into<String>) -> Self {
        Self {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault plan: {} (expected e.g. \"seed=1;eval-panic:key=MDG,limit=1\"; sites: {})",
            self.detail,
            Site::ALL.map(Site::id).join(", ")
        )
    }
}

impl std::error::Error for PlanParseError {}

impl FromStr for FaultPlan {
    type Err = PlanParseError;

    /// Parses the `BSCHED_FAULTS` plan grammar:
    ///
    /// ```text
    /// plan    = segment (';' segment)*
    /// segment = "seed=" u64
    ///         | site-id [':' option (',' option)*]
    /// option  = "key=" substring | "rate=" f64 | "limit=" u32 | "arg=" u64
    /// ```
    ///
    /// Keys are plain substrings matched against the cell context and may
    /// not contain `,` or `;`.
    fn from_str(s: &str) -> Result<FaultPlan, PlanParseError> {
        let mut plan = FaultPlan::default();
        for segment in s.split(';').map(str::trim).filter(|t| !t.is_empty()) {
            if let Some(seed) = segment.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| PlanParseError::new(format!("bad seed {seed:?}")))?;
                continue;
            }
            let (site_id, opts) = match segment.split_once(':') {
                Some((site, opts)) => (site.trim(), opts),
                None => (segment, ""),
            };
            let site = Site::from_id(site_id)
                .ok_or_else(|| PlanParseError::new(format!("unknown site {site_id:?}")))?;
            let mut spec = FaultSpec::always(site);
            for opt in opts.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                let (name, value) = opt
                    .split_once('=')
                    .ok_or_else(|| PlanParseError::new(format!("bad option {opt:?}")))?;
                match name.trim() {
                    "key" => spec.key = Some(value.to_owned()),
                    "rate" => {
                        let rate: f64 = value
                            .parse()
                            .map_err(|_| PlanParseError::new(format!("bad rate {value:?}")))?;
                        if !(0.0..=1.0).contains(&rate) {
                            return Err(PlanParseError::new(format!("rate {rate} outside [0, 1]")));
                        }
                        spec.rate = rate;
                    }
                    "limit" => {
                        spec.limit =
                            Some(value.parse().map_err(|_| {
                                PlanParseError::new(format!("bad limit {value:?}"))
                            })?);
                    }
                    "arg" => {
                        spec.arg = Some(
                            value
                                .parse()
                                .map_err(|_| PlanParseError::new(format!("bad arg {value:?}")))?,
                        );
                    }
                    other => {
                        return Err(PlanParseError::new(format!("unknown option {other:?}")));
                    }
                }
            }
            plan.specs.push(spec);
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_ids_roundtrip() {
        for site in Site::ALL {
            assert_eq!(Site::from_id(site.id()), Some(site), "{site}");
        }
        assert_eq!(Site::from_id("no-such-site"), None);
    }

    #[test]
    fn parse_full_grammar() {
        let plan: FaultPlan = "seed=42;eval-panic:key=MDG,limit=1;latency-jitter:rate=0.5,arg=100"
            .parse()
            .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.specs.len(), 2);
        assert_eq!(plan.specs[0].site, Site::EvalPanic);
        assert_eq!(plan.specs[0].key.as_deref(), Some("MDG"));
        assert_eq!(plan.specs[0].limit, Some(1));
        assert_eq!(plan.specs[1].site, Site::LatencyJitter);
        assert_eq!(plan.specs[1].rate, 0.5);
        assert_eq!(plan.specs[1].arg, Some(100));
    }

    #[test]
    fn parse_bare_site_and_whitespace() {
        let plan: FaultPlan = " sim-stall ; seed=7 ".parse().unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.specs, vec![FaultSpec::always(Site::SimStall)]);
    }

    #[test]
    fn display_roundtrips() {
        for spec in [
            "seed=42;eval-panic:key=MDG,limit=1",
            "seed=0;latency-jitter:rate=0.5,arg=100;sim-stall",
            "seed=9;parse-reject;alloc-exhaust:key=ADM",
        ] {
            let plan: FaultPlan = spec.parse().unwrap();
            let reparsed: FaultPlan = plan.to_string().parse().unwrap();
            assert_eq!(plan, reparsed, "{spec}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "boom",
            "eval-panic:frequency=2",
            "eval-panic:rate=1.5",
            "eval-panic:rate=x",
            "eval-panic:limit=-1",
            "seed=twelve",
            "eval-panic:key",
        ] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn key_matching_is_substring() {
        let spec = FaultSpec::always(Site::EvalPanic).with_key("MDG");
        assert!(spec.matches("MDG|L80(2,5) @ 2|UNLIMITED"));
        assert!(!spec.matches("ADM|L80(2,5) @ 2|UNLIMITED"));
        assert!(FaultSpec::always(Site::EvalPanic).matches(""));
    }
}
