//! Deterministic fault injection and watchdog primitives.
//!
//! The paper's premise is that load latency is *uncertain*; this crate
//! makes the rest of the harness prove it can survive uncertainty that
//! is adversarial rather than merely stochastic. A [`FaultPlan`] arms
//! named [`Site`]s across the pipeline (parser, allocator, simulator,
//! evaluation workers); each layer calls [`fault_point!`] at its site
//! and reacts to the returned [`FiredFault`], if any.
//!
//! Design rules:
//!
//! - **Zero cost when disabled.** `fault_point!` compiles to a single
//!   relaxed atomic load when no plan is installed, so production runs
//!   are bit-identical to a build without the crate.
//! - **Deterministic.** Whether occurrence *n* of a site fires in a
//!   given cell is a pure hash of `(plan seed, site, cell, n)` —
//!   independent of thread count, timing, or iteration order across
//!   cells.
//! - **No silent corruption.** Every fire is recorded against the
//!   current `(cell, attempt)` context; the harness treats any attempt
//!   during which a fault fired as *tainted* and either retries it or
//!   reports a typed degraded outcome, never a quietly perturbed number.

mod plan;

pub use plan::{FaultPlan, FaultSpec, PlanParseError, Site};

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// One fault that actually fired at a site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredFault {
    /// The site that fired.
    pub site: Site,
    /// Site-specific magnitude from the matching spec ([`FaultSpec::arg`]),
    /// or the site's default when the spec left it unset.
    pub arg: u64,
    /// The cell context the fire was recorded under (empty outside any
    /// [`with_cell_context`] scope).
    pub cell: String,
}

/// Per-(site, cell) firing state.
#[derive(Default)]
struct SiteCounters {
    occurrences: u64,
    fires: u32,
}

struct Active {
    plan: FaultPlan,
    /// (site, cell) → occurrence/fire counters.
    counters: Mutex<HashMap<(Site, String), SiteCounters>>,
    /// (cell, attempt) → faults that fired during that attempt.
    fired: Mutex<HashMap<(String, u32), Vec<FiredFault>>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ACTIVE: RwLock<Option<Arc<Active>>> = RwLock::new(None);

thread_local! {
    /// The (cell key, attempt) the current thread is evaluating.
    static CONTEXT: RefCell<Option<(String, u32)>> = const { RefCell::new(None) };
    /// The cancellation token watching the current thread, if any.
    static CANCEL: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// True when a fault plan is installed. This is the only check on the
/// hot path; everything else happens behind it.
#[inline(always)]
#[must_use]
pub fn active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `plan` process-wide, replacing any previous plan and
/// clearing all counters and fired records.
pub fn install(plan: FaultPlan) {
    let enabled = !plan.is_empty();
    *ACTIVE.write().unwrap() = Some(Arc::new(Active {
        plan,
        counters: Mutex::new(HashMap::new()),
        fired: Mutex::new(HashMap::new()),
    }));
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Removes any installed plan; [`fault_point!`] goes back to its
/// single-load fast path.
pub fn clear() {
    ENABLED.store(false, Ordering::Relaxed);
    *ACTIVE.write().unwrap() = None;
}

/// The currently installed plan, if any.
#[must_use]
pub fn installed_plan() -> Option<FaultPlan> {
    ACTIVE.read().unwrap().as_ref().map(|a| a.plan.clone())
}

/// Installs a plan from the `BSCHED_FAULTS` environment variable, once
/// per process. Call this at binary startup; later calls are no-ops.
///
/// # Panics
/// Panics (loudly, by design) when `BSCHED_FAULTS` is set but does not
/// parse — a chaos run with a typo'd plan must never silently run clean.
pub fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Ok(spec) = std::env::var("BSCHED_FAULTS") {
            if !spec.trim().is_empty() {
                let plan: FaultPlan = spec
                    .parse()
                    .unwrap_or_else(|e: PlanParseError| panic!("BSCHED_FAULTS: {e}"));
                install(plan);
            }
        }
    });
}

/// Default magnitude per site, used when the matching spec has no `arg`.
#[must_use]
pub fn default_arg(site: Site) -> u64 {
    match site {
        // Extra latency cycles folded into a load's sampled latency
        // (then clamped to the model's declared support).
        Site::LatencyJitter => 1_000,
        // Stall cycles — large enough to trip any sane cycle budget,
        // small enough that saturating arithmetic never overflows.
        Site::SimStall => 1 << 40,
        // Sleep milliseconds for a slow cell / slow server worker / slow
        // tuner candidate.
        Site::SlowCell | Site::SlowWorker | Site::TuneStall => 50,
        Site::Parse
        | Site::Alloc
        | Site::EvalPanic
        | Site::ServeReject
        | Site::PersistCorrupt
        | Site::ShardDown => 0,
    }
}

/// splitmix64 — a tiny, high-quality mixer; good enough to turn
/// (seed, site, cell, occurrence) into an independent uniform draw.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_str(mut h: u64, s: &str) -> u64 {
    for b in s.as_bytes() {
        h = splitmix64(h ^ u64::from(*b));
    }
    h
}

/// The deterministic uniform draw in [0, 1) for one occurrence.
fn draw(seed: u64, site: Site, cell: &str, occurrence: u64) -> f64 {
    let mut h = splitmix64(seed ^ 0xb5ec_u64);
    h = hash_str(h, site.id());
    h = hash_str(h, cell);
    h = splitmix64(h ^ occurrence);
    // 53 random bits → uniform f64 in [0, 1).
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Reports one occurrence of `site` on the current thread and decides —
/// deterministically — whether a fault fires.
///
/// Returns the fired fault (also recorded against the current
/// `(cell, attempt)` context for [`take_fired`]) or `None`. Prefer the
/// [`fault_point!`] macro, which skips this call entirely when no plan
/// is installed.
#[must_use]
pub fn trigger(site: Site) -> Option<FiredFault> {
    let active = ACTIVE.read().unwrap().as_ref()?.clone();
    let (cell, attempt) =
        CONTEXT.with(|c| c.borrow().clone().unwrap_or_else(|| (String::new(), 0)));

    let mut counters = active.counters.lock().unwrap();
    let state = counters.entry((site, cell.clone())).or_default();
    let occurrence = state.occurrences;
    state.occurrences += 1;

    let mut fired = None;
    for spec in active.plan.matching(site, &cell) {
        if let Some(limit) = spec.limit {
            if state.fires >= limit {
                continue;
            }
        }
        if spec.rate < 1.0 && draw(active.plan.seed, site, &cell, occurrence) >= spec.rate {
            continue;
        }
        state.fires += 1;
        fired = Some(FiredFault {
            site,
            arg: spec.arg.unwrap_or_else(|| default_arg(site)),
            cell: cell.clone(),
        });
        break;
    }
    drop(counters);

    if let Some(fault) = &fired {
        active
            .fired
            .lock()
            .unwrap()
            .entry((cell, attempt))
            .or_default()
            .push(fault.clone());
    }
    fired
}

/// The injection hook each layer plants at its fault site.
///
/// `fault_point!(Site::X)` evaluates to `Option<FiredFault>`; when no
/// plan is installed it is a single relaxed atomic load.
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {
        if $crate::active() {
            $crate::trigger($site)
        } else {
            None
        }
    };
}

/// Applies adversarial jitter to a sampled load latency, clamped to the
/// latency model's declared support `[min, max]` so verification
/// invariants (`verify_timeline`, `min_latency_elapsed`) still hold.
///
/// `max = None` means the model declares no upper bound (the jittered
/// value is only clamped from below).
#[must_use]
pub fn jitter_latency(sampled: u64, extra: u64, min: u64, max: Option<u64>) -> u64 {
    let jittered = sampled.saturating_add(extra);
    let floored = jittered.max(min.max(1));
    match max {
        Some(hi) => floored.min(hi.max(min.max(1))),
        None => floored,
    }
}

/// Runs `f` with the thread's fault context set to `(cell, attempt)`,
/// restoring the previous context afterwards (even on panic).
pub fn with_cell_context<R>(cell: &str, attempt: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<(String, u32)>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CONTEXT.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CONTEXT.with(|c| c.borrow_mut().replace((cell.to_owned(), attempt)));
    let _restore = Restore(prev);
    f()
}

/// The current thread's fault context, if any. Worker pools use this to
/// re-plant the spawning thread's context inside their workers.
#[must_use]
pub fn current_context() -> Option<(String, u32)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// Sets (or clears) the current thread's fault context directly. Worker
/// pools call this with the value captured via [`current_context`].
pub fn set_context(ctx: Option<(String, u32)>) {
    CONTEXT.with(|c| *c.borrow_mut() = ctx);
}

/// Removes and returns the faults that fired during `(cell, attempt)`.
///
/// The harness calls this after each attempt: a non-empty result means
/// the attempt was *tainted* — its value may have been perturbed (e.g.
/// by latency jitter) and must not be reported as a clean number.
#[must_use]
pub fn take_fired(cell: &str, attempt: u32) -> Vec<FiredFault> {
    let Some(active) = ACTIVE.read().unwrap().as_ref().cloned() else {
        return Vec::new();
    };
    let taken = active
        .fired
        .lock()
        .unwrap()
        .remove(&(cell.to_owned(), attempt))
        .unwrap_or_default();
    taken
}

/// A shared cancellation flag for cooperative wall-clock watchdogs.
///
/// The watchdog holds one clone and calls [`cancel`](CancelToken::cancel)
/// on timeout; the worker installs its clone as the thread's current
/// token and long-running loops poll [`cancelled`] between units of work.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// True once any clone has been cancelled.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Runs `f` with `token` installed as the current thread's cancellation
/// token, restoring the previous token afterwards (even on panic).
pub fn with_cancel_token<R>(token: CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CANCEL.with(|c| *c.borrow_mut() = prev);
        }
    }
    let prev = CANCEL.with(|c| c.borrow_mut().replace(token));
    let _restore = Restore(prev);
    f()
}

/// The current thread's cancellation token, if any. Worker pools use
/// this to propagate the token into their workers.
#[must_use]
pub fn current_cancel_token() -> Option<CancelToken> {
    CANCEL.with(|c| c.borrow().clone())
}

/// Sets (or clears) the current thread's cancellation token directly.
pub fn set_cancel_token(token: Option<CancelToken>) {
    CANCEL.with(|c| *c.borrow_mut() = token);
}

/// True when the current thread is being watched by a token that has
/// been cancelled. Long loops (the simulator's per-run loop) poll this.
#[must_use]
pub fn cancelled() -> bool {
    CANCEL.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The plan registry is process-global; serialize tests that touch it.
    static PLAN_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        PLAN_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_by_default_and_after_clear() {
        let _g = lock();
        clear();
        assert!(!active());
        assert_eq!(fault_point!(Site::EvalPanic), None);
        install(FaultPlan::seeded(1).with(FaultSpec::always(Site::EvalPanic)));
        assert!(active());
        clear();
        assert!(!active());
    }

    #[test]
    fn always_spec_fires_and_is_recorded_against_context() {
        let _g = lock();
        install(FaultPlan::seeded(1).with(FaultSpec::always(Site::EvalPanic).with_key("MDG")));
        let fired = with_cell_context("MDG|cell", 0, || fault_point!(Site::EvalPanic));
        assert_eq!(fired.as_ref().map(|f| f.site), Some(Site::EvalPanic));
        let missed = with_cell_context("ADM|cell", 0, || fault_point!(Site::EvalPanic));
        assert_eq!(missed, None);
        assert_eq!(take_fired("MDG|cell", 0).len(), 1);
        assert_eq!(take_fired("MDG|cell", 0).len(), 0, "take drains");
        assert_eq!(take_fired("ADM|cell", 0).len(), 0);
        clear();
    }

    #[test]
    fn limit_makes_faults_transient() {
        let _g = lock();
        install(FaultPlan::seeded(1).with(FaultSpec::always(Site::EvalPanic).with_limit(1)));
        let first = with_cell_context("cell", 0, || fault_point!(Site::EvalPanic));
        let second = with_cell_context("cell", 1, || fault_point!(Site::EvalPanic));
        assert!(first.is_some());
        assert_eq!(second, None, "limit=1 exhausted after the first fire");
        let other = with_cell_context("other-cell", 0, || fault_point!(Site::EvalPanic));
        assert!(other.is_some(), "limits are per (site, cell)");
        clear();
    }

    #[test]
    fn rate_draws_are_deterministic() {
        let _g = lock();
        let plan =
            FaultPlan::seeded(42).with(FaultSpec::always(Site::LatencyJitter).with_rate(0.5));
        let run = |plan: &FaultPlan| {
            install(plan.clone());
            let pattern: Vec<bool> = (0..64)
                .map(|_| {
                    with_cell_context("cell", 0, || fault_point!(Site::LatencyJitter)).is_some()
                })
                .collect();
            clear();
            pattern
        };
        let a = run(&plan);
        let b = run(&plan);
        assert_eq!(a, b, "same plan → same firing pattern");
        let fires = a.iter().filter(|f| **f).count();
        assert!((8..=56).contains(&fires), "rate 0.5 fired {fires}/64");
        let c = run(&FaultPlan::seeded(43).with(plan.specs[0].clone()));
        assert_ne!(a, c, "different seed → different pattern");
    }

    #[test]
    fn jitter_respects_declared_support() {
        assert_eq!(jitter_latency(3, 1_000, 2, Some(5)), 5);
        assert_eq!(jitter_latency(3, 0, 2, Some(5)), 3);
        assert_eq!(jitter_latency(0, 0, 2, Some(5)), 2);
        assert_eq!(jitter_latency(1, u64::MAX, 1, None), u64::MAX);
        assert_eq!(jitter_latency(1, 7, 1, None), 8);
    }

    #[test]
    fn context_nests_and_restores() {
        assert_eq!(current_context(), None);
        with_cell_context("outer", 0, || {
            assert_eq!(current_context(), Some(("outer".into(), 0)));
            with_cell_context("inner", 3, || {
                assert_eq!(current_context(), Some(("inner".into(), 3)));
            });
            assert_eq!(current_context(), Some(("outer".into(), 0)));
        });
        assert_eq!(current_context(), None);
    }

    #[test]
    fn cancel_token_is_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        assert!(!cancelled(), "no token installed on this thread");
        with_cancel_token(clone, || assert!(cancelled()));
        assert!(!cancelled());
    }
}
