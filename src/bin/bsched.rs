//! `bsched` — drive the balanced-scheduling pipeline from the command
//! line on kernels written in the text format (see
//! `bsched_workload::parse`).
//!
//! ```console
//! $ bsched schedule kernel.bsk [--scheduler balanced|average|traditional=<lat>] [--alias fortran|c]
//! $ bsched compare  kernel.bsk --system "L80(2,10)" [--optimistic 2] [--processor unlimited|max8|len8] [--runs 30]
//! $ bsched simulate kernel.bsk --system "N(3,5)" [--scheduler …] [--seed 7]
//! $ bsched dot      kernel.bsk [--overlay]     # Graphviz of the code DAG
//! $ bsched analyze  kernel.bsk [--format json] # dataflow lints with source spans
//! $ bsched analyze  --benchmarks --format json # stand-in profiles (results/profiles.json)
//! ```

use std::process::ExitCode;

use balanced_scheduling::analyze::{
    audit_tree, failure_json, has_errors, max_live, pressure_profile, render_json, render_text,
    suite_json,
};
use balanced_scheduling::cpusim::{render_timeline, simulate_block_traced};
use balanced_scheduling::dag::{to_dot, to_dot_annotated, CodeDag, DotOverlay};
use balanced_scheduling::faults;
use balanced_scheduling::ir::RegClass;
use balanced_scheduling::prelude::*;
use balanced_scheduling::workload::{lower_kernel, parse_program, try_lower_parsed};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bsched: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  bsched schedule <kernel.bsk> [--scheduler S] [--alias fortran|c]
  bsched stats    <kernel.bsk> [--alias fortran|c]
  bsched compare  <kernel.bsk> --system SYS [--optimistic LAT] [--processor P] [--runs N] [--seed N]
  bsched simulate <kernel.bsk> --system SYS [--scheduler S] [--processor P] [--seed N]
  bsched dot      <kernel.bsk> [--alias fortran|c] [--overlay]
  bsched analyze  <kernel.bsk> [--alias fortran|c] [--format text|json]
                  [--allow LINT] [--warn LINT] [--deny LINT|warnings]
  bsched analyze  --benchmarks [--format text|json] [--alias …] [--deny …]
  bsched analyze  --unsafe-audit [--root DIR]       # every `unsafe` needs // SAFETY:
  bsched serve    --listen HOST:PORT [--workers N] [--io-threads N]
                  [--queue-cap N] [--cache-cap N] [--deadline-ms N]
                  [--cache-log PATH] [--max-line-bytes N] [--write-cap-bytes N]
  bsched serve    --listen HOST:PORT --route SHARD1,SHARD2,…
                  [--failure-threshold K] [--probe-interval-ms N]
                  [--probe-timeout-ms N] [--forward-timeout-ms N]
  bsched serve    --control ROUTER_ADDR (--add-shard HOST:PORT |
                  --drain-shard HOST:PORT [--no-stop] | --members)
  bsched tune     <kernel.bsk> [--system SYS] [--driver beam|mcts] [--seed N]
                  [--beam N] [--iterations N] [--runs N] [--threads N]
                  [--timeout-ms N] [--journal PATH] [--out POLICY.json]
  bsched tune     --benchmarks [--bench-out BENCH_tune.json] [--system SYS] [...]

  S    = balanced | balanced-approx | average | traditional=<latency>
       | policy:<file.json>  (artifact written by `bsched tune --out`)
  SYS  = L80(2,5) | N(3,5) | L80-N(30,5) | fixed(4) | …
  P    = unlimited | max8 | len8
  LAT  = 2 | 2.6 | 13/5 | …
  LINT = dead-store | uninitialized-read | redundant-load | …  (see README)

  every command also accepts --faults PLAN (or BSCHED_FAULTS=PLAN), e.g.
  --faults \"seed=1;latency-jitter:rate=0.5\" — see DESIGN.md §9";

/// Flags that take no value.
const BOOLEAN_FLAGS: [&str; 5] = [
    "benchmarks",
    "overlay",
    "unsafe-audit",
    "members",
    "no-stop",
];

/// Minimal `--flag value` argument scanner.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = argv.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    flags.push((name.to_owned(), String::new()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("missing value for --{name}\n{USAGE}"))?;
                flags.push((name.to_owned(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn is_set(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Every `(name, value)` pair whose name is in `names`, in the order
    /// given on the command line (so later severity overrides win).
    fn flags_among<'a>(&'a self, names: &'a [&str]) -> impl Iterator<Item = (&'a str, &'a str)> {
        self.flags
            .iter()
            .filter(move |(n, _)| names.contains(&n.as_str()))
            .map(|(n, v)| (n.as_str(), v.as_str()))
    }
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        return Err(USAGE.to_owned());
    };
    let args = Args::parse(rest)?;
    faults::init_from_env();
    if let Some(spec) = args.flag("faults") {
        let plan: faults::FaultPlan = spec.parse().map_err(|e| format!("--faults: {e}"))?;
        faults::install(plan);
    }
    if command == "analyze" {
        // `analyze --benchmarks` works on the built-in stand-ins and
        // takes no kernel file, so it skips the shared file loading.
        return analyze_cmd(&args);
    }
    if command == "serve" {
        // `serve` takes no kernel file either: kernels arrive over the
        // socket, one request per line.
        return serve_cmd(&args);
    }
    if command == "tune" {
        // `tune --benchmarks` works on the built-in stand-ins, so it
        // shares `analyze`'s special-cased file handling.
        return tune_cmd(&args);
    }
    let file = args
        .positional
        .first()
        .ok_or_else(|| format!("missing kernel file\n{USAGE}"))?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let kernels = parse_program(&src).map_err(|e| format!("{file}:{e}"))?;
    let blocks: Vec<BasicBlock> = kernels
        .iter()
        .map(|k| lower_kernel(&k.kernel, k.frequency))
        .collect();

    match command.as_str() {
        "schedule" => {
            for block in &blocks {
                schedule_cmd(&args, block)?;
            }
            Ok(())
        }
        "compare" => compare_cmd(&args, blocks),
        "simulate" => {
            for block in &blocks {
                simulate_cmd(&args, block)?;
            }
            Ok(())
        }
        "dot" => {
            for block in &blocks {
                let dag = build_dag(block, alias_of(&args)?);
                if args.is_set("overlay") {
                    let overlay = overlay_of(&dag, block);
                    print!("{}", to_dot_annotated(&dag, block.name(), &overlay));
                } else {
                    print!("{}", to_dot(&dag, block.name()));
                }
            }
            Ok(())
        }
        "stats" => {
            use balanced_scheduling::dag::DagProfile;
            use balanced_scheduling::sched::BalancedWeights;
            for block in &blocks {
                let dag = build_dag(block, alias_of(&args)?);
                let profile = DagProfile::of(&dag);
                let weights = BalancedWeights::new().assign(&dag);
                println!("{}: {profile}", block.name());
                for id in dag.load_ids() {
                    println!("  {:10} weight {}", dag.name(id), weights.weight(id));
                }
            }
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Builds the `dot --overlay` annotations: balanced weights as a second
/// label line on every node, combined int+float register pressure as a
/// heat fill, and the block's MaxLive as the graph caption.
fn overlay_of(dag: &CodeDag, block: &BasicBlock) -> DotOverlay {
    let weights = BalancedWeights::new().assign(dag);
    let int = pressure_profile(block, RegClass::Int);
    let float = pressure_profile(block, RegClass::Float);
    let at = |profile: &[u32], idx: usize| profile.get(idx).copied().unwrap_or(0);
    DotOverlay {
        node_notes: dag
            .node_ids()
            .map(|id| (id, format!("w={}", weights.weight(id))))
            .collect(),
        pressure: dag
            .node_ids()
            .map(|id| (id, at(&int, id.index()) + at(&float, id.index())))
            .collect(),
        caption: format!(
            "{}: MaxLive {} int / {} float",
            block.name(),
            max_live(block, RegClass::Int),
            max_live(block, RegClass::Float),
        ),
    }
}

fn lint_config_of(args: &Args) -> Result<LintConfig, String> {
    let mut config = LintConfig::new();
    for (name, value) in args.flags_among(&["allow", "warn", "deny"]) {
        if name == "deny" && value == "warnings" {
            config = config.deny_warnings();
            continue;
        }
        let lint = Lint::from_id(value).ok_or_else(|| {
            format!(
                "unknown lint {value:?} (known: {})",
                Lint::ALL.map(Lint::id).join(", ")
            )
        })?;
        config = match name {
            "allow" => config.allow(lint),
            "warn" => config.warn(lint),
            _ => config.deny(lint),
        };
    }
    Ok(config)
}

/// `bsched analyze`: run the dataflow lints over a kernel file (with
/// source spans) or, with `--benchmarks`, over the Perfect Club
/// stand-ins (profiles + envelope checks). Exits non-zero when any
/// error-level diagnostic survives the configuration.
fn analyze_cmd(args: &Args) -> Result<(), String> {
    if args.is_set("unsafe-audit") {
        return unsafe_audit_cmd(args);
    }
    let analyzer = Analyzer::new(alias_of(args)?).with_config(lint_config_of(args)?);
    let format = args.flag("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(format!("unknown format {format:?} (text|json)"));
    }

    let mut all: Vec<Diagnostic> = Vec::new();
    if args.is_set("benchmarks") {
        let mut profiles = Vec::new();
        for bench in perfect_club() {
            let report = analyzer.analyze_benchmark(&bench);
            if format == "text" {
                let p = &report.profile;
                println!(
                    "{:8} {:4} insts {:4} loads  mean block {:5.1}  llp {:5.2}  peak fp {}",
                    p.name,
                    p.total_instructions,
                    p.total_loads,
                    p.mean_block_size,
                    p.mean_llp,
                    p.peak_float_pressure,
                );
            }
            all.extend(report.diagnostics);
            profiles.push(report.profile);
        }
        if format == "json" {
            // stdout carries the machine-readable profile suite (what
            // results/profiles.json records); diagnostics go to stderr.
            print!("{}", suite_json(&profiles));
            if !all.is_empty() {
                eprint!("{}", render_text(&all));
            }
        } else {
            print!("{}", render_text(&all));
        }
    } else {
        let file = args
            .positional
            .first()
            .ok_or_else(|| format!("missing kernel file (or --benchmarks)\n{USAGE}"))?;
        let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        // Pipeline-stage failures use the shared failure vocabulary: in
        // JSON mode stdout carries the same {kind, detail} object the
        // table harness journals, so tooling classifies both identically.
        let kernels = parse_program(&src)
            .map_err(|e| stage_failure(format, file, &PipelineError::from(e)))?;
        for parsed in &kernels {
            let (block, map) = try_lower_parsed(parsed)
                .map_err(|e| stage_failure(format, file, &PipelineError::from(e)))?;
            all.extend(analyzer.analyze_block(&block, Some(&map)));
        }
        if format == "json" {
            println!("{}", render_json(&all));
        } else {
            print!("{}", render_text(&all));
        }
    }
    let errors = all.iter().filter(|d| d.severity == Severity::Error).count();
    if has_errors(&all) {
        return Err(format!(
            "{errors} error-level diagnostic{}",
            if errors == 1 { "" } else { "s" }
        ));
    }
    Ok(())
}

/// `bsched analyze --unsafe-audit`: scan the source tree (default the
/// current directory) for `unsafe` code lacking an adjacent
/// `// SAFETY:` comment. Violations list on stdout; any at all fails
/// the process, which is what CI keys on.
fn unsafe_audit_cmd(args: &Args) -> Result<(), String> {
    let root = args.flag("root").unwrap_or(".");
    let violations = audit_tree(std::path::Path::new(root))
        .map_err(|e| format!("unsafe audit walk of {root}: {e}"))?;
    if violations.is_empty() {
        println!("unsafe audit: every `unsafe` under {root} carries a SAFETY comment");
        return Ok(());
    }
    for v in &violations {
        println!("{v}");
    }
    Err(format!(
        "{} `unsafe` occurrence{} without a SAFETY comment",
        violations.len(),
        if violations.len() == 1 { "" } else { "s" }
    ))
}

/// Renders a pipeline-stage failure for `analyze`: in JSON mode the
/// machine-readable `{"kind": …, "detail": …}` object goes to stdout
/// (the same vocabulary `FAILED(<kind>: …)` table cells use), and the
/// human-readable message becomes the process error either way.
fn stage_failure(format: &str, file: &str, err: &PipelineError) -> String {
    if format == "json" {
        println!("{}", failure_json(err.failure_kind(), &err.to_string()));
    }
    format!("{file}: {err}")
}

/// `bsched serve`: run the scheduling daemon — or, with `--route`, the
/// fleet router — until it drains on SIGTERM/SIGINT or an
/// `op:"shutdown"` request. Kernels arrive over the socket (see
/// DESIGN.md §10/§12 and `bsched-serve`'s crate docs).
fn serve_cmd(args: &Args) -> Result<(), String> {
    use balanced_scheduling::serve::{install_signal_handlers, Server, ServerConfig};
    if args.is_set("control") {
        return control_cmd(args);
    }
    if args.is_set("route") {
        return route_cmd(args);
    }
    let defaults = ServerConfig::default();
    let parse_size = |name: &str, fallback: usize| -> Result<usize, String> {
        match args.flag(name) {
            None => Ok(fallback),
            Some(raw) => raw
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("--{name}: bad count {raw:?}")),
        }
    };
    let cfg = ServerConfig {
        listen: args
            .flag("listen")
            .ok_or("missing --listen HOST:PORT")?
            .to_owned(),
        workers: parse_size("workers", defaults.workers)?,
        io_threads: parse_size("io-threads", defaults.io_threads)?,
        queue_capacity: parse_size("queue-cap", defaults.queue_capacity)?,
        cache_capacity: parse_size("cache-cap", defaults.cache_capacity)?,
        default_deadline_ms: match args.flag("deadline-ms") {
            None => None,
            Some(raw) => Some(
                raw.parse::<u64>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("--deadline-ms: bad value {raw:?}"))?,
            ),
        },
        cache_log: args.flag("cache-log").map(str::to_owned),
        max_line_bytes: parse_size("max-line-bytes", defaults.max_line_bytes)?,
        write_cap_bytes: parse_size("write-cap-bytes", defaults.write_cap_bytes)?,
    };
    install_signal_handlers();
    let server = Server::start(cfg).map_err(|e| format!("serve: {e}"))?;
    eprintln!("bsched serve: listening on {}", server.local_addr());
    server.join();
    eprintln!("bsched serve: drained, exiting");
    Ok(())
}

/// `bsched serve --route shard1,shard2,…`: the consistent-hash router
/// in front of a fleet of shard daemons (DESIGN.md §12).
fn route_cmd(args: &Args) -> Result<(), String> {
    use balanced_scheduling::serve::{install_signal_handlers, Router, RouterConfig};
    let shards: Vec<String> = args
        .flag("route")
        .unwrap_or_default()
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect();
    if shards.is_empty() {
        return Err("--route: give a comma-separated shard list (host:port,…)".to_owned());
    }
    let mut cfg = RouterConfig {
        listen: args
            .flag("listen")
            .ok_or("missing --listen HOST:PORT")?
            .to_owned(),
        shards,
        ..RouterConfig::default()
    };
    if let Some(raw) = args.flag("failure-threshold") {
        cfg.health.failure_threshold = raw
            .parse::<u32>()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("--failure-threshold: bad count {raw:?}"))?;
    }
    let parse_ms = |name: &str| -> Result<Option<std::time::Duration>, String> {
        match args.flag(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<u64>()
                .ok()
                .filter(|n| *n > 0)
                .map(|n| Some(std::time::Duration::from_millis(n)))
                .ok_or_else(|| format!("--{name}: bad milliseconds {raw:?}")),
        }
    };
    if let Some(d) = parse_ms("probe-interval-ms")? {
        cfg.health.interval = d;
    }
    if let Some(d) = parse_ms("probe-timeout-ms")? {
        cfg.health.connect_timeout = d;
    }
    if let Some(d) = parse_ms("forward-timeout-ms")? {
        cfg.forward_timeout = d;
    }
    install_signal_handlers();
    let router = Router::start(cfg).map_err(|e| format!("serve --route: {e}"))?;
    eprintln!("bsched serve: routing on {}", router.local_addr());
    router.join();
    eprintln!("bsched serve: router drained, exiting");
    Ok(())
}

/// `bsched serve --control ROUTER_ADDR …`: one-shot membership client.
/// Sends a single control op to a running router, prints the response
/// line, and exits non-zero unless the router answered `status: ok`.
fn control_cmd(args: &Args) -> Result<(), String> {
    use std::io::Write;
    let router = args.flag("control").unwrap_or_default().to_owned();
    if router.is_empty() || !router.contains(':') {
        return Err("--control: give the router address (host:port)".to_owned());
    }
    let ops = [
        args.flag("add-shard").map(|addr| {
            format!(
                "{{\"op\":\"add-shard\",\"addr\":{}}}",
                balanced_scheduling::analyze::json::string(addr)
            )
        }),
        args.flag("drain-shard").map(|addr| {
            format!(
                "{{\"op\":\"drain-shard\",\"addr\":{},\"stop\":{}}}",
                balanced_scheduling::analyze::json::string(addr),
                !args.is_set("no-stop")
            )
        }),
        args.is_set("members")
            .then(|| "{\"op\":\"members\"}".to_owned()),
    ];
    let mut picked = ops.into_iter().flatten();
    let line = picked
        .next()
        .ok_or("--control: give one of --add-shard ADDR, --drain-shard ADDR, --members")?;
    if picked.next().is_some() {
        return Err("--control: give exactly one membership op".to_owned());
    }
    let mut stream = std::net::TcpStream::connect(&router)
        .map_err(|e| format!("--control: connect {router}: {e}"))?;
    // Draining waits for in-flight work (up to ~10s server-side), so
    // give the response read generous headroom.
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .map_err(|e| format!("--control: {e}"))?;
    stream
        .write_all(format!("{line}\n").as_bytes())
        .map_err(|e| format!("--control: send to {router}: {e}"))?;
    let mut reader = std::io::BufReader::new(stream);
    let response = balanced_scheduling::serve::read_line_bounded(&mut reader, 64 * 1024 * 1024)
        .map_err(|e| format!("--control: read from {router}: {e}"))?
        .ok_or_else(|| format!("--control: {router} closed without responding"))?;
    println!("{response}");
    if response.contains("\"status\":\"ok\"") {
        Ok(())
    } else {
        Err("router refused the membership op".to_owned())
    }
}

/// Shared `tune` parameter parsing (`--driver`, `--beam`, …).
fn tune_config_of(args: &Args) -> Result<balanced_scheduling::tune::TuneConfig, String> {
    use balanced_scheduling::tune::{Driver, TuneConfig};
    let mut cfg = TuneConfig {
        seed: seed_of(args)?,
        processor: processor_of(args)?,
        alias: alias_of(args)?,
        ..TuneConfig::default()
    };
    if let Some(raw) = args.flag("driver") {
        cfg.driver =
            Driver::from_id(raw).ok_or_else(|| format!("unknown driver {raw:?} (beam|mcts)"))?;
    }
    let parse_count = |name: &str, fallback: usize| -> Result<usize, String> {
        match args.flag(name) {
            None => Ok(fallback),
            Some(raw) => raw
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("--{name}: bad count {raw:?}")),
        }
    };
    cfg.beam_width = parse_count("beam", cfg.beam_width)?;
    cfg.iterations = parse_count("iterations", cfg.iterations)?;
    cfg.threads = parse_count("threads", cfg.threads)?;
    if let Some(raw) = args.flag("runs") {
        cfg.runs = raw
            .parse::<u32>()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("--runs: bad count {raw:?}"))?;
    }
    if let Some(raw) = args.flag("timeout-ms") {
        let ms = raw
            .parse::<u64>()
            .ok()
            .filter(|n| *n > 0)
            .ok_or_else(|| format!("--timeout-ms: bad milliseconds {raw:?}"))?;
        cfg.candidate_timeout = Some(std::time::Duration::from_millis(ms));
    }
    if let Some(path) = args.flag("journal") {
        cfg.journal = Some(std::path::PathBuf::from(path));
    }
    Ok(cfg)
}

/// Writes `text` to `path` atomically (temp + rename), the same
/// discipline the crash-safe journals use.
fn write_atomic(path: &str, text: &str) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("{tmp}: {e}"))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))
}

/// Renders the policy artifact JSON for a finished search.
fn policy_artifact(
    report: &balanced_scheduling::tune::TuneReport,
    kernel: &str,
    system: &MemorySystem,
    cfg: &balanced_scheduling::tune::TuneConfig,
) -> String {
    use balanced_scheduling::analyze::json;
    // Meta values must arrive as already-rendered JSON.
    report.best.to_artifact_json(&[
        ("kernel", json::string(kernel)),
        ("system", json::string(&system.name())),
        ("driver", json::string(cfg.driver.id())),
        ("seed", cfg.seed.to_string()),
        ("score", format!("{:.6}", report.best_score)),
        ("balanced", format!("{:.6}", report.baseline_score)),
    ])
}

/// `bsched tune`: search the policy space for one kernel file, or with
/// `--benchmarks` for every Perfect Club stand-in (writing the
/// `BENCH_tune.json` table the CI gate checks).
fn tune_cmd(args: &Args) -> Result<(), String> {
    use balanced_scheduling::tune::tune;
    let system: MemorySystem = match args.flag("system") {
        Some(spec) => spec.parse().map_err(|e| format!("{e}"))?,
        // The paper's pathological model: always-slow, uncertain
        // latency, where scheduling policy matters most.
        None => "N(30,5)".parse().expect("default system parses"),
    };
    let cfg = tune_config_of(args)?;
    if args.is_set("benchmarks") {
        return tune_benchmarks_cmd(args, &system, &cfg);
    }
    let file = args
        .positional
        .first()
        .ok_or_else(|| format!("missing kernel file (or --benchmarks)\n{USAGE}"))?;
    let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
    let kernels = parse_program(&src).map_err(|e| format!("{file}:{e}"))?;
    let blocks: Vec<BasicBlock> = kernels
        .iter()
        .map(|k| lower_kernel(&k.kernel, k.frequency))
        .collect();
    let name = blocks
        .first()
        .map_or_else(|| "program".to_owned(), |b| b.name().to_owned());
    let func = Function::new(name.clone(), blocks);
    let report = tune(&func, &system, &cfg).map_err(|e| format!("tune: {e}"))?;
    println!("system            {}", system.name());
    println!("driver            {} (seed {})", cfg.driver, cfg.seed);
    println!(
        "space             {} candidates: {} measured, {} pruned, {} quarantined, {} resumed",
        report.space_size, report.evaluated, report.pruned, report.skipped, report.resumed
    );
    println!("balanced          {:.1} cycles", report.baseline_score);
    println!(
        "tuned             {:.1} cycles  ({:+.2}%)",
        report.best_score,
        -report.improvement_percent()
    );
    println!("policy            {}", report.best.canonical());
    if let Some(out) = args.flag("out") {
        write_atomic(out, &policy_artifact(&report, &name, &system, &cfg))?;
        println!("artifact          {out}");
    }
    Ok(())
}

/// `bsched tune --benchmarks`: tune each stand-in and emit the
/// `BENCH_tune.json` table (tuned vs balanced mean cycles per program).
fn tune_benchmarks_cmd(
    args: &Args,
    system: &MemorySystem,
    base_cfg: &balanced_scheduling::tune::TuneConfig,
) -> Result<(), String> {
    use balanced_scheduling::analyze::json;
    use balanced_scheduling::tune::tune;
    let mut rows = Vec::new();
    let mut wins = 0usize;
    for bench in perfect_club() {
        let mut cfg = base_cfg.clone();
        // One crash-safe journal per stand-in, so a killed sweep resumes
        // mid-suite.
        if let Some(path) = &base_cfg.journal {
            cfg.journal = Some(path.with_extension(format!("{}.jsonl", bench.name())));
        }
        let report =
            tune(bench.function(), system, &cfg).map_err(|e| format!("{}: {e}", bench.name()))?;
        let beat = report.best_score < report.baseline_score;
        wins += usize::from(beat);
        println!(
            "{:8} balanced {:9.1}  tuned {:9.1}  ({:+.2}%)  {}",
            bench.name(),
            report.baseline_score,
            report.best_score,
            -report.improvement_percent(),
            report.best.canonical()
        );
        rows.push(format!(
            "    {{\"name\":{},\"balanced\":{:.6},\"tuned\":{:.6},\"improvement_percent\":{:.4},\
             \"beats_balanced\":{},\"policy\":{},\"evaluated\":{},\"pruned\":{},\"skipped\":{}}}",
            json::string(bench.name()),
            report.baseline_score,
            report.best_score,
            report.improvement_percent(),
            beat,
            json::string(&report.best.canonical()),
            report.evaluated,
            report.pruned,
            report.skipped
        ));
    }
    println!("tuned wins        {wins}/8 stand-ins");
    let out = args.flag("bench-out").unwrap_or("BENCH_tune.json");
    let text = format!(
        "{{\n  \"bench\": \"bsched-tune-v1\",\n  \"system\": {},\n  \"driver\": {},\n  \
         \"seed\": {},\n  \"runs\": {},\n  \"beam_width\": {},\n  \"tuned_wins\": {wins},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        json::string(&system.name()),
        json::string(base_cfg.driver.id()),
        base_cfg.seed,
        base_cfg.runs,
        base_cfg.beam_width,
        rows.join(",\n")
    );
    write_atomic(out, &text)?;
    println!("table             {out}");
    Ok(())
}

fn alias_of(args: &Args) -> Result<AliasModel, String> {
    match args.flag("alias").unwrap_or("fortran") {
        "fortran" => Ok(AliasModel::Fortran),
        "c" => Ok(AliasModel::CConservative),
        other => Err(format!("unknown alias model {other:?} (fortran|c)")),
    }
}

fn scheduler_of(args: &Args) -> Result<SchedulerChoice, String> {
    let spec = args.flag("scheduler").unwrap_or("balanced");
    match spec {
        "balanced" => Ok(SchedulerChoice::balanced()),
        "balanced-approx" => Ok(SchedulerChoice::Balanced {
            method: ChancesMethod::LevelApprox,
        }),
        "average" => Ok(SchedulerChoice::Average),
        other => {
            if let Some(lat) = other.strip_prefix("traditional=") {
                let latency: Ratio = lat
                    .parse()
                    .map_err(|e| format!("bad latency {lat:?}: {e}"))?;
                Ok(SchedulerChoice::traditional(latency))
            } else if let Some(path) = other.strip_prefix("policy:") {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("policy file {path}: {e}"))?;
                let spec = PolicySpec::from_artifact_json(&text)
                    .map_err(|e| format!("policy file {path}: {e}"))?;
                Ok(SchedulerChoice::Tuned(spec))
            } else {
                Err(format!("unknown scheduler {other:?}"))
            }
        }
    }
}

fn processor_of(args: &Args) -> Result<ProcessorModel, String> {
    match args.flag("processor").unwrap_or("unlimited") {
        "unlimited" => Ok(ProcessorModel::Unlimited),
        "max8" => Ok(ProcessorModel::max_8()),
        "len8" => Ok(ProcessorModel::len_8()),
        other => Err(format!("unknown processor {other:?} (unlimited|max8|len8)")),
    }
}

fn system_of(args: &Args) -> Result<MemorySystem, String> {
    let spec = args.flag("system").ok_or("missing --system")?;
    spec.parse().map_err(|e| format!("{e}"))
}

fn seed_of(args: &Args) -> Result<u64, String> {
    match args.flag("seed") {
        None => Ok(EvalConfig::default().seed),
        Some(s) => s.parse().map_err(|_| format!("bad seed {s:?}")),
    }
}

fn pipeline_of(args: &Args) -> Result<Pipeline, String> {
    Ok(Pipeline {
        alias: alias_of(args)?,
        ..Pipeline::default()
    })
}

fn schedule_cmd(args: &Args, block: &BasicBlock) -> Result<(), String> {
    let choice = scheduler_of(args)?;
    let pipeline = pipeline_of(args)?;
    println!("Input ({} instructions):\n{block}", block.len());
    let compiled = pipeline
        .compile_block(block, &choice)
        .map_err(|e| format!("register allocation failed: {e}"))?;
    println!(
        "{} schedule ({} instructions, {} spill):\n{}",
        choice.name(),
        compiled.block.len(),
        compiled.spill_count,
        compiled.block
    );
    Ok(())
}

fn compare_cmd(args: &Args, blocks: Vec<BasicBlock>) -> Result<(), String> {
    let system = system_of(args)?;
    let optimistic: Ratio = match args.flag("optimistic") {
        Some(lat) => lat
            .parse()
            .map_err(|e| format!("bad latency {lat:?}: {e}"))?,
        None => Ratio::from_int(system.optimistic_latency().round().max(1.0) as i64),
    };
    let runs: u32 = match args.flag("runs") {
        Some(r) => r.parse().map_err(|_| format!("bad runs {r:?}"))?,
        None => 30,
    };
    let pipeline = pipeline_of(args)?;
    let name = blocks
        .first()
        .map_or_else(|| "program".to_owned(), |b| b.name().to_owned());
    let func = Function::new(name, blocks);
    let balanced = pipeline
        .compile(&func, &SchedulerChoice::balanced())
        .map_err(|e| format!("register allocation failed: {e}"))?;
    let traditional = pipeline
        .compile(&func, &SchedulerChoice::traditional(optimistic))
        .map_err(|e| format!("register allocation failed: {e}"))?;
    let cfg = EvalConfig {
        runs,
        processor: processor_of(args)?,
        seed: seed_of(args)?,
        ..EvalConfig::default()
    };
    let t = evaluate(&traditional, &system, &cfg);
    let b = evaluate(&balanced, &system, &cfg);
    let imp = compare(&t, &b);
    println!("system            {}", system.name());
    println!("processor         {}", cfg.processor);
    println!("optimistic        {optimistic}");
    println!(
        "traditional       {:.1} cycles  ({:.1}% interlock, {:.2}% spill)",
        t.mean_runtime,
        t.interlock_percent(),
        traditional.spill_percent()
    );
    println!(
        "balanced          {:.1} cycles  ({:.1}% interlock, {:.2}% spill)",
        b.mean_runtime,
        b.interlock_percent(),
        balanced.spill_percent()
    );
    println!("improvement       {imp}");
    Ok(())
}

fn simulate_cmd(args: &Args, block: &BasicBlock) -> Result<(), String> {
    let system = system_of(args)?;
    let choice = scheduler_of(args)?;
    let pipeline = pipeline_of(args)?;
    let compiled = pipeline
        .compile_block(block, &choice)
        .map_err(|e| format!("register allocation failed: {e}"))?;
    let mut rng = Pcg32::seed_from_u64(seed_of(args)?);
    let (result, events) =
        simulate_block_traced(&compiled.block, &system, processor_of(args)?, &mut rng);
    println!("{}", render_timeline(&compiled.block, &events));
    println!("{result}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_of(argv: &[&str]) -> Args {
        Args::parse(&argv.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn args_split_positional_and_flags() {
        let args = args_of(&["file.bsk", "--system", "N(3,5)", "--runs", "10"]);
        assert_eq!(args.positional, vec!["file.bsk"]);
        assert_eq!(args.flag("system"), Some("N(3,5)"));
        assert_eq!(args.flag("runs"), Some("10"));
        assert_eq!(args.flag("missing"), None);
    }

    #[test]
    fn later_flags_win() {
        let args = args_of(&["f", "--seed", "1", "--seed", "2"]);
        assert_eq!(args.flag("seed"), Some("2"));
    }

    #[test]
    fn missing_flag_value_is_an_error() {
        let argv = vec!["f".to_owned(), "--system".to_owned()];
        assert!(Args::parse(&argv).is_err());
    }

    #[test]
    fn scheduler_specs() {
        assert_eq!(
            scheduler_of(&args_of(&[])).unwrap(),
            SchedulerChoice::balanced()
        );
        assert_eq!(
            scheduler_of(&args_of(&["--scheduler", "traditional=2.6"])).unwrap(),
            SchedulerChoice::traditional(Ratio::new(13, 5))
        );
        assert_eq!(
            scheduler_of(&args_of(&["--scheduler", "average"])).unwrap(),
            SchedulerChoice::Average
        );
        assert!(scheduler_of(&args_of(&["--scheduler", "bogus"])).is_err());
        assert!(scheduler_of(&args_of(&["--scheduler", "traditional=zero"])).is_err());
    }

    #[test]
    fn scheduler_policy_file_roundtrip() {
        let spec = PolicySpec::balanced_default();
        let mut path = std::env::temp_dir();
        path.push(format!("bsched-bin-policy-{}.json", std::process::id()));
        std::fs::write(&path, spec.to_artifact_json(&[])).unwrap();
        let arg = format!("policy:{}", path.display());
        let choice = scheduler_of(&args_of(&["--scheduler", &arg])).unwrap();
        assert_eq!(choice, SchedulerChoice::Tuned(spec));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scheduler_policy_file_errors_are_typed() {
        let missing = scheduler_of(&args_of(&["--scheduler", "policy:/no/such/file.json"]));
        assert!(missing
            .unwrap_err()
            .contains("policy file /no/such/file.json"));

        let mut path = std::env::temp_dir();
        path.push(format!("bsched-bin-bad-policy-{}.json", std::process::id()));
        std::fs::write(&path, "{\"policy\":\"wrong-version\"}").unwrap();
        let arg = format!("policy:{}", path.display());
        let err = scheduler_of(&args_of(&["--scheduler", &arg])).unwrap_err();
        assert!(err.contains("unsupported policy version"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn tune_config_flags() {
        let cfg = tune_config_of(&args_of(&[
            "--driver",
            "mcts",
            "--seed",
            "11",
            "--beam",
            "4",
            "--iterations",
            "50",
            "--runs",
            "6",
            "--threads",
            "2",
            "--timeout-ms",
            "250",
            "--journal",
            "j.jsonl",
        ]))
        .unwrap();
        assert_eq!(cfg.driver, balanced_scheduling::tune::Driver::Mcts);
        assert_eq!(cfg.seed, 11);
        assert_eq!(cfg.beam_width, 4);
        assert_eq!(cfg.iterations, 50);
        assert_eq!(cfg.runs, 6);
        assert_eq!(cfg.threads, 2);
        assert_eq!(
            cfg.candidate_timeout,
            Some(std::time::Duration::from_millis(250))
        );
        assert_eq!(
            cfg.journal.as_deref(),
            Some(std::path::Path::new("j.jsonl"))
        );

        assert!(tune_config_of(&args_of(&["--driver", "anneal"])).is_err());
        assert!(tune_config_of(&args_of(&["--beam", "0"])).is_err());
        assert!(tune_config_of(&args_of(&["--timeout-ms", "soon"])).is_err());
    }

    #[test]
    fn processor_specs() {
        assert_eq!(
            processor_of(&args_of(&[])).unwrap(),
            ProcessorModel::Unlimited
        );
        assert_eq!(
            processor_of(&args_of(&["--processor", "max8"])).unwrap(),
            ProcessorModel::max_8()
        );
        assert_eq!(
            processor_of(&args_of(&["--processor", "len8"])).unwrap(),
            ProcessorModel::len_8()
        );
        assert!(processor_of(&args_of(&["--processor", "quantum"])).is_err());
    }

    #[test]
    fn alias_specs() {
        assert_eq!(alias_of(&args_of(&[])).unwrap(), AliasModel::Fortran);
        assert_eq!(
            alias_of(&args_of(&["--alias", "c"])).unwrap(),
            AliasModel::CConservative
        );
        assert!(alias_of(&args_of(&["--alias", "ada"])).is_err());
    }

    #[test]
    fn system_and_seed() {
        assert!(system_of(&args_of(&[])).is_err(), "system is required");
        let sys = system_of(&args_of(&["--system", "L80(2,10)"])).unwrap();
        assert_eq!(sys.name(), "L80(2,10)");
        assert_eq!(seed_of(&args_of(&["--seed", "9"])).unwrap(), 9);
        assert!(seed_of(&args_of(&["--seed", "x"])).is_err());
    }
}
