//! # Balanced Scheduling
//!
//! A from-scratch Rust reproduction of *"Balanced Scheduling: Instruction
//! Scheduling When Memory Latency is Uncertain"* (Daniel R. Kerns and
//! Susan J. Eggers, PLDI 1993), including every substrate the paper's
//! evaluation depends on.
//!
//! This crate is a facade: it re-exports the subsystem crates under short
//! module names and the most common types at the root. See `DESIGN.md`
//! for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison of every table and figure.
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`ir`] | `bsched-ir` | MIPS-like RISC IR |
//! | [`dag`] | `bsched-dag` | code DAG + dependence analysis |
//! | [`sched`] | `bsched-core` | balanced/traditional weights + list scheduler |
//! | [`regalloc`] | `bsched-regalloc` | linear scan + FIFO spill pool |
//! | [`memsim`] | `bsched-memsim` | cache / network / mixed latency models |
//! | [`cpusim`] | `bsched-cpusim` | non-blocking-load processor simulator |
//! | [`workload`] | `bsched-workload` | kernels + Perfect Club stand-ins |
//! | [`stats`] | `bsched-stats` | RNG, bootstrap, confidence intervals |
//! | [`pipeline`] | `bsched-pipeline` | compile → simulate → compare |
//! | [`verify`] | `bsched-verify` | independent schedule/allocation/timeline validators |
//! | [`analyze`] | `bsched-analyze` | dataflow lints, profile reports, envelope checks |
//! | [`faults`] | `bsched-faults` | deterministic fault injection + watchdog primitives |
//! | [`serve`] | `bsched-serve` | scheduling daemon: line-JSON protocol, cache, backpressure |
//!
//! # Quick start
//!
//! Compare the two schedulers on the paper's showcase benchmark (MDG)
//! under a high-variance memory network:
//!
//! ```
//! use balanced_scheduling::prelude::*;
//!
//! let mdg = bsched_workload::perfect::mdg();
//! let pipeline = Pipeline::default();
//! let balanced = pipeline.compile(mdg.function(), &SchedulerChoice::balanced()).unwrap();
//! let traditional = pipeline
//!     .compile(mdg.function(), &SchedulerChoice::traditional(Ratio::from_int(2)))
//!     .unwrap();
//!
//! let mem = NetworkModel::new(2.0, 5.0);
//! let cfg = EvalConfig { runs: 10, ..EvalConfig::default() }; // 30 in the paper
//! let imp = compare(&evaluate(&traditional, &mem, &cfg), &evaluate(&balanced, &mem, &cfg));
//! assert!(imp.mean_percent > 0.0, "balanced wins under uncertainty: {imp}");
//! ```

#![warn(missing_docs)]

pub use bsched_analyze as analyze;
pub use bsched_core as sched;
pub use bsched_cpusim as cpusim;
pub use bsched_dag as dag;
pub use bsched_faults as faults;
pub use bsched_ir as ir;
pub use bsched_memsim as memsim;
pub use bsched_pipeline as pipeline;
pub use bsched_regalloc as regalloc;
pub use bsched_serve as serve;
pub use bsched_stats as stats;
pub use bsched_tune as tune;
pub use bsched_verify as verify;
pub use bsched_workload as workload;

/// The most common types, importable in one line.
pub mod prelude {
    pub use bsched_analyze::{Analyzer, Diagnostic, Lint, LintConfig, Severity};
    pub use bsched_core::{
        BalancedWeights, Direction, ListScheduler, Ratio, Rounding, Schedule, TraditionalWeights,
        WeightAssigner,
    };
    pub use bsched_cpusim::{simulate_block, ProcessorModel, SimResult};
    pub use bsched_dag::{build_dag, AliasModel, ChancesMethod, CodeDag};
    pub use bsched_ir::{BasicBlock, BlockBuilder, Function, InstId};
    pub use bsched_memsim::{
        CacheModel, FixedLatency, LatencyModel, MemorySystem, MixedModel, NetworkModel,
    };
    pub use bsched_pipeline::{
        compare, evaluate, AnalysisGate, CompiledProgram, EvalConfig, Pipeline, PipelineError,
        PolicySpec, SchedulerChoice, WeightFamily,
    };
    pub use bsched_regalloc::{allocate, AllocatorConfig, PoolPolicy};
    pub use bsched_stats::{Improvement, Pcg32};
    pub use bsched_verify::ValidationLevel;
    pub use bsched_workload::{perfect_club, Benchmark};
}
