//! A minimal, dependency-free stand-in for the `proptest` property
//! testing framework, vendored so the workspace builds in offline
//! environments.
//!
//! Supported subset (everything this repository's property tests use):
//!
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, doc
//!   comments, `#[test]` attributes and `arg in strategy` parameters;
//! * [`Strategy`](strategy::Strategy) implemented for numeric ranges and
//!   tuples, plus [`prop_map`](strategy::Strategy::prop_map);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`];
//! * [`ProptestConfig::with_cases`](test_runner::ProptestConfig::with_cases).
//!
//! Semantics differ from real proptest in two deliberate ways: case
//! generation is **deterministic** (seeded from the test function name, so
//! failures reproduce exactly) and there is **no shrinking** — a failing
//! case panics with the sampled values printed by the assertion itself.

/// Deterministic case generation.
pub mod rng {
    /// SplitMix64 — the stand-in's only random source.
    #[derive(Debug, Clone, Copy)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed; all seeds are valid.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self { state: seed }
        }

        /// Seeds a generator from a test name, deterministically.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self::new(h)
        }

        /// Next 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// Controls how many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::rng::TestRng;

    /// A recipe for generating values of an output type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as u128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_unit_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (self.end - self.start) * rng.next_unit_f64() as f32
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
        A.0, B.1, C.2, D.3, E.4
    )(A.0, B.1, C.2, D.3, E.4, F.5));

    /// `Just(v)`: always generates a clone of `v`.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// The common import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::rng::TestRng;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `config.cases` generated
/// cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::rng::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let ($($arg,)+) = (
                        $( $crate::strategy::Strategy::generate(&($strat), &mut rng), )+
                    );
                    let run = || -> () { $body };
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = result {
                        eprintln!(
                            "proptest case {case}/{} of {} failed",
                            config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5usize..60), &mut rng);
            assert!((5..60).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = TestRng::from_name("t");
        let mut b = TestRng::from_name("t");
        for _ in 0..100 {
            assert_eq!(
                Strategy::generate(&(0u64..1000), &mut a),
                Strategy::generate(&(0u64..1000), &mut b)
            );
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1usize..4, 0.0f64..1.0).prop_map(|(n, x)| n as f64 + x);
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1.0..4.0).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: args bind, asserts work, cases loop.
        #[test]
        fn macro_generates_cases(n in 1u64..100, f in 0.0f64..1.0) {
            prop_assert!((1..100).contains(&n));
            prop_assert!((0.0..1.0).contains(&f), "f = {f}");
            prop_assert_eq!(n, n);
            prop_assert_ne!(n as f64 + 1.0, f);
        }
    }
}
