//! A minimal, dependency-free stand-in for the `criterion` benchmark
//! harness, vendored so the workspace builds in offline environments.
//!
//! It implements the API subset this repository's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`] — and
//! reports a mean wall-clock time per iteration on stderr instead of
//! criterion's full statistical analysis. Timings are real; confidence
//! intervals, HTML reports and regression detection are not provided.

use std::fmt::Display;
use std::time::Instant;

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Minimum measured iterations per benchmark, before `sample_size`
/// scaling.
const MIN_ITERS: u32 = 10;
/// Target measurement budget per benchmark.
const TARGET_NANOS: u128 = 200_000_000;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the nominal sample count (scales the iteration budget).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2) as u32;
        self
    }

    /// Accepted for CLI compatibility; no-op in the stand-in.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(name.to_owned(), self.sample_size);
        f(&mut b);
        b.report();
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration throughput (printed with results).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2) as u32;
        self
    }

    /// Benchmarks `f` against a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(format!("{}/{}", self.name, id.0), self.sample_size);
        f(&mut b, input);
        b.report();
        self
    }

    /// Benchmarks `f` with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(format!("{}/{}", self.name, id.0), self.sample_size);
        f(&mut b);
        b.report();
        self
    }

    /// Ends the group (prints nothing extra in the stand-in).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter value, e.g. `balanced/200`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    /// A bare parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Throughput annotation (accepted, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes per iteration, decimal multiple display.
    BytesDecimal(u64),
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    label: String,
    sample_size: u32,
    mean_nanos: Option<f64>,
}

impl Bencher {
    fn new(label: String, sample_size: u32) -> Self {
        Self {
            label,
            sample_size,
            mean_nanos: None,
        }
    }

    /// Times `routine`, warming up briefly, then iterating until either
    /// the iteration budget or the time budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = MIN_ITERS.max(self.sample_size);
        let start = Instant::now();
        let mut iters: u32 = 0;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= budget || start.elapsed().as_nanos() >= TARGET_NANOS {
                break;
            }
        }
        let total = start.elapsed().as_nanos() as f64;
        self.mean_nanos = Some(total / f64::from(iters));
    }

    fn report(&self) {
        match self.mean_nanos {
            Some(ns) => eprintln!("bench {:<48} {}", self.label, format_nanos(ns)),
            None => eprintln!("bench {:<48} (no measurement)", self.label),
        }
    }
}

fn format_nanos(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:>10.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:>10.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:>10.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:>10.1} ns/iter")
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default().sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| {
            b.iter(|| black_box(7));
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).0, "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").0, "x");
    }

    #[test]
    fn nanos_formatting_scales() {
        assert!(format_nanos(5.0).contains("ns"));
        assert!(format_nanos(5.0e3).contains("µs"));
        assert!(format_nanos(5.0e6).contains("ms"));
        assert!(format_nanos(5.0e9).contains("s/iter"));
    }
}
