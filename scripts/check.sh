#!/usr/bin/env bash
# Full verification pass: build, lint, test, doc, regenerate experiments.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --all-targets
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace
cargo doc --workspace --no-deps

# Smoke the experiment binaries at reduced run counts.
export BSCHED_RUNS=5
for bin in table1 table2 table3 table4 table5 figure2 figure3 workload_stats; do
    cargo run --release -q -p bsched-bench --bin "$bin" > /dev/null
done
echo "all checks passed"
