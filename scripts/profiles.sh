#!/usr/bin/env bash
# Regenerates results/profiles.json — the static profile of every
# Perfect Club stand-in (block sizes, LLP, load density, pressure) as
# reported by `bsched analyze --benchmarks --format json`.
#
# The committed file is what the profile-envelope lint and EXPERIMENTS.md
# commentary are calibrated against, so it should only change when the
# stand-in kernels themselves change. In check mode the script fails if
# the tree would regenerate something different from what is committed.
#
# Usage: scripts/profiles.sh [--check]
set -euo pipefail
cd "$(dirname "$0")/.."

out=results/profiles.json
cargo build --release -q --bin bsched

if [ "${1:-}" = "--check" ]; then
    tmp=$(mktemp /tmp/bsched-profiles.XXXXXX.json)
    trap 'rm -f "$tmp"' EXIT
    ./target/release/bsched analyze --benchmarks --format json > "$tmp"
    if ! diff -u "$out" "$tmp"; then
        echo "error: $out is stale — rerun scripts/profiles.sh and commit" >&2
        exit 1
    fi
    echo "$out is up to date" >&2
else
    mkdir -p results
    ./target/release/bsched analyze --benchmarks --format json > "$out"
    echo "wrote $out" >&2
fi
