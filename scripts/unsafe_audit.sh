#!/usr/bin/env bash
# Unsafe audit: every `unsafe` block, fn, or impl in the workspace must
# carry an adjacent `// SAFETY:` comment naming the invariant that makes
# it sound. Thin wrapper over `bsched analyze --unsafe-audit` so CI,
# hooks, and humans all run the identical scanner.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -x target/release/bsched ]]; then
    exec target/release/bsched analyze --unsafe-audit "$@"
fi
exec cargo run -q --bin bsched -- analyze --unsafe-audit "$@"
