#!/usr/bin/env bash
# Times the table2 workload (BSCHED_RUNS=5) on the current tree against a
# pinned pre-optimization baseline commit and writes BENCH_eval.json.
#
# The baseline is built in a temporary git worktree, so the working tree
# is never touched. Wall times are best-of-N to shed scheduler noise.
#
# Usage: scripts/bench.sh [reps]   (default 5 timed reps per binary)
set -euo pipefail
cd "$(dirname "$0")/.."

# Last commit before the perf work: single-threaded, double-simulation,
# allocating weights kernel. First commit that builds offline.
BASELINE_COMMIT=80499425dd0d2af96f2341fe13337bacaadc67bb
REPS="${1:-5}"
RUNS=5

now_ms() { echo $(( $(date +%s%N) / 1000000 )); }

# best_of <reps> <binary> — prints the fastest wall time in ms.
best_of() {
    local reps="$1" bin="$2" best=-1 t0 t1 dt
    # One untimed warm-up run to fault the binary and data in.
    BSCHED_RUNS=$RUNS "$bin" > /dev/null 2>&1
    for _ in $(seq "$reps"); do
        t0=$(now_ms)
        BSCHED_RUNS=$RUNS "$bin" > /dev/null 2>&1
        t1=$(now_ms)
        dt=$(( t1 - t0 ))
        if [ "$best" -lt 0 ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
    done
    echo "$best"
}

echo "building current tree..." >&2
cargo build --release -q -p bsched-bench

# --- Crash-safe results pass -------------------------------------------
# Before timing anything, produce the actual table once under a journal:
# every finished cell is recorded with an atomic temp+rename write, so an
# interrupted run (Ctrl-C, SIGTERM, OOM kill) leaves a valid prefix
# behind and the next invocation resumes from it instead of restarting —
# the harness prints "resumed N of M cells from the journal" on stderr
# when that happens. A completed pass removes the journal so stale state
# can never leak into a later run. Timing reps below deliberately run
# without the journal: they must re-evaluate every cell.
JOURNAL=results/.journal.jsonl
mkdir -p results
on_interrupt() {
    echo "" >&2
    echo "interrupted: partial results are preserved in $JOURNAL." >&2
    echo "re-run scripts/bench.sh to resume the remaining cells." >&2
    exit 130
}
trap on_interrupt INT TERM
echo "results pass (journal: $JOURNAL)..." >&2
BSCHED_JOURNAL="$JOURNAL" BSCHED_RUNS=$RUNS ./target/release/table2 > results/table2.txt
trap - INT TERM
rm -f "$JOURNAL"
echo "wrote results/table2.txt" >&2

current_ms=$(best_of "$REPS" ./target/release/table2)
echo "current:  ${current_ms}ms (best of $REPS, BSCHED_RUNS=$RUNS)" >&2

# --- Serving pass -------------------------------------------------------
# Throughput/latency/cache numbers for the bsched-serve daemon, written
# to BENCH_serve.json by the load generator itself (atomic temp+rename,
# so an interrupted run keeps the previous good report — same discipline
# as the journal above). This runs against the *current* tree only (the
# baseline commit below predates the serve subsystem), with an
# in-process server so nothing needs backgrounding. After the two cache
# passes and the pipelined burst, --sweep replays the warmed mix at
# rising client counts and records the throughput/latency curve into the
# report's "sweep" array.
echo "serve pass (loadgen, 2 passes + concurrency sweep)..." >&2
cargo build --release -q -p bsched-serve
./target/release/bsched-loadgen \
    --spawn --io-threads 2 --clients 8 --passes 2 --runs $RUNS \
    --burst 16 --sweep 1,2,4,8,16,32,64 \
    --expect-hit-rate 90 --out BENCH_serve.json
echo "wrote BENCH_serve.json (incl. sweep curve)" >&2

# --- Fleet chaos + membership + scale-out pass --------------------------
# Fleet evidence, all in one loadgen run: three shard daemons (each with
# a persistent cache log) behind the consistent-hash router, then
#   1. --kill-shard SIGKILLs one shard mid-mix (zero failed client
#      requests), restarts it, and gates on a >=90% warm-replay hit rate;
#   2. --add-shard-at/--drain-shard-at run a fourth shard in and drain
#      shard 0 out while traffic flows (zero dropped requests, re-homed
#      key fraction <= 1.5/N, drained log warm-starts, streamed == plain
#      through the router);
#   3. --scaleout measures the 1/2/3-shard aggregate-throughput curve on
#      a service-time-bound mix (see EXPERIMENTS.md for why that makes
#      the curve portable to small CI hosts).
# The "fleet", "membership", and "scaleout" report sections are merged
# into BENCH_serve.json so one file carries all the serving numbers.
# Exit code is the gate: any dropped request, a cold restart, or a
# failed membership transition fails the bench.
echo "fleet chaos pass (kill-one, add/drain membership, scale-out curve)..." >&2
cargo build --release -q -p balanced-scheduling
fleet_dir=$(mktemp -d /tmp/bsched-fleet.XXXXXX)
./target/release/bsched-loadgen \
    --fleet 3 --kill-shard --clients 8 --passes 2 --runs $RUNS \
    --serve-bin ./target/release/bsched --cache-log-dir "$fleet_dir" \
    --add-shard-at 8 --drain-shard-at 16 --scaleout 1,2,3 \
    --expect-hit-rate 90 --out BENCH_fleet.json
rm -rf "$fleet_dir"
# Splice the fleet/membership/scaleout sections into BENCH_serve.json:
# replace its closing brace with ,"fleet":{...},...} pulled from the
# fleet run's report (everything after ,"fleet": up to the final brace).
fleet_json=$(sed -n 's/.*,"fleet":\({.*\)}$/\1/p' BENCH_fleet.json)
if [ -n "$fleet_json" ]; then
    sed -i "s/}\$/,\"fleet\":${fleet_json}}/" BENCH_serve.json
    rm -f BENCH_fleet.json
    echo "merged fleet/membership/scaleout sections into BENCH_serve.json" >&2
else
    echo "warning: no fleet section found in BENCH_fleet.json; kept it separate" >&2
fi

# --- Autotuner pass -----------------------------------------------------
# Search-based policy tuning over all eight stand-ins under the paper's
# N(30,5) network. The tool writes BENCH_tune.json atomically
# (temp+rename), and each stand-in's search runs under its own
# crash-safe journal, so an interrupted pass resumes instead of
# restarting. A compact "tune" section is then spliced into
# BENCH_serve.json with the same last-line sed idiom as "fleet", so one
# file still carries every serving-adjacent number.
echo "tune pass (beam search over all stand-ins)..." >&2
./target/release/bsched tune --benchmarks --seed 42 --runs $RUNS \
    --journal results/.tune-journal --bench-out BENCH_tune.json
rm -f results/.tune-journal*.jsonl
tune_json=$(tr -s ' \n' ' ' < BENCH_tune.json | sed 's/^ //; s/ $//')
if [ -n "$tune_json" ]; then
    sed -i "\$ s|}\$|,\"tune\":${tune_json}}|" BENCH_serve.json
    echo "merged tune section into BENCH_serve.json" >&2
else
    echo "warning: BENCH_tune.json is empty; skipped the serve-report splice" >&2
fi

# Shallow clones and fresh checkouts may not carry the baseline commit;
# fail with a clear message instead of a cryptic worktree error.
if ! git cat-file -e "$BASELINE_COMMIT^{commit}" 2>/dev/null; then
    echo "error: baseline commit $BASELINE_COMMIT is not in this clone." >&2
    echo "       Fetch full history first (git fetch --unshallow) or update" >&2
    echo "       BASELINE_COMMIT in scripts/bench.sh." >&2
    exit 1
fi

worktree=$(mktemp -d /tmp/bsched-bench-baseline.XXXXXX)
rmdir "$worktree"
echo "building baseline $BASELINE_COMMIT in a worktree..." >&2
git worktree add --detach -q "$worktree" "$BASELINE_COMMIT"
trap 'git worktree remove --force "$worktree" 2>/dev/null || true' EXIT
(cd "$worktree" && cargo build --release -q -p bsched-bench)
baseline_ms=$(best_of "$REPS" "$worktree/target/release/table2")
echo "baseline: ${baseline_ms}ms (best of $REPS, BSCHED_RUNS=$RUNS)" >&2

# Shell arithmetic only (no bc in the container): speedup to 2 decimals.
speedup_x100=$(( baseline_ms * 100 / current_ms ))
speedup="$(( speedup_x100 / 100 )).$(printf '%02d' $(( speedup_x100 % 100 )))"

cat > BENCH_eval.json <<JSON
{
  "workload": "table2",
  "env": { "BSCHED_RUNS": $RUNS },
  "reps": $REPS,
  "timing": "best-of-reps wall clock, milliseconds",
  "baseline_commit": "$BASELINE_COMMIT",
  "current_commit": "$(git rev-parse HEAD)",
  "threads_available": $(nproc),
  "baseline_ms": $baseline_ms,
  "current_ms": $current_ms,
  "speedup": $speedup
}
JSON
echo "wrote BENCH_eval.json (speedup ${speedup}x)" >&2
