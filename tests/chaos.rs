//! Chaos soak: full table slices run under seeded fault plans, with the
//! metamorphic invariant that every cell is either **bit-identical** to
//! the fault-free run or a **typed degraded outcome** — never a
//! silently wrong number. Alongside the soak, property tests pin the
//! latency contracts the fault layer leans on: every memory model
//! samples inside its declared support, injected jitter is clamped back
//! into that support, and `min_latency_elapsed` stays a valid floor on
//! simulated time even while jitter fires.

use balanced_scheduling::cpusim::simulate_block;
use balanced_scheduling::faults::{self, FaultPlan, FaultSpec, Site};
use balanced_scheduling::prelude::*;
use balanced_scheduling::verify::min_latency_elapsed;
use balanced_scheduling::workload::{random_block, GeneratorConfig};
use bsched_bench::{run_cell, run_cells_reported, table2_rows, Cell, CellJob, SystemRow};
use proptest::prelude::*;

/// Serialises every test in this binary that installs a fault plan or
/// touches `BSCHED_*` environment variables; the test harness runs
/// tests on concurrent threads and both are process-global.
static CHAOS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A small but real table slice: three Perfect Club benchmarks under a
/// cache row and a network row. Cheap enough to evaluate repeatedly,
/// wide enough that rate-based plans hit some cells and miss others.
fn slice_jobs<'a>(benches: &'a [Benchmark], rows: &'a [SystemRow]) -> Vec<CellJob<'a>> {
    let mut jobs = Vec::new();
    for bench in benches {
        for row in rows {
            jobs.push(CellJob {
                bench,
                row,
                processor: ProcessorModel::Unlimited,
            });
        }
    }
    jobs
}

fn baseline(jobs: &[CellJob<'_>]) -> Vec<Cell> {
    jobs.iter()
        .map(|j| run_cell(j.bench, j.row, j.processor))
        .collect()
}

/// Bit-identical in every number a table renders from the cell.
fn assert_bit_identical(cell: &Cell, base: &Cell, key: &str) {
    assert_eq!(
        cell.improvement.mean_percent.to_bits(),
        base.improvement.mean_percent.to_bits(),
        "{key}: improvement drifted from the fault-free run"
    );
    assert_eq!(
        cell.traditional.bootstrap_runtimes, base.traditional.bootstrap_runtimes,
        "{key}: traditional bootstrap drifted"
    );
    assert_eq!(
        cell.balanced.bootstrap_runtimes, base.balanced.bootstrap_runtimes,
        "{key}: balanced bootstrap drifted"
    );
    assert_eq!(
        cell.traditional_spill_percent.to_bits(),
        base.traditional_spill_percent.to_bits()
    );
    assert_eq!(
        cell.balanced_spill_percent.to_bits(),
        base.balanced_spill_percent.to_bits()
    );
}

/// The soak itself: three seeded plans — panics, result-perturbing
/// jitter, and a stall at a rate — each run over the same slice and
/// checked cell by cell against the fault-free baseline.
#[test]
fn chaos_soak_holds_the_metamorphic_invariant() {
    let _guard = chaos_lock();
    std::env::set_var("BSCHED_RUNS", "2");
    std::env::set_var("BSCHED_BACKOFF_MS", "0");
    let benches: Vec<Benchmark> = perfect_club().into_iter().take(3).collect();
    let rows: Vec<SystemRow> = {
        let all = table2_rows();
        vec![all[0].clone(), all[8].clone()] // L80(2,5) @ 2 and N(2,2) @ 2
    };
    let jobs = slice_jobs(&benches, &rows);
    let base = baseline(&jobs);

    let plans: Vec<(&str, FaultPlan)> = vec![
        (
            "eval-panic at rate 1/2",
            FaultPlan::seeded(3).with(FaultSpec::always(Site::EvalPanic).with_rate(0.5)),
        ),
        (
            "latency jitter at rate 1/2",
            FaultPlan::seeded(11).with(
                FaultSpec::always(Site::LatencyJitter)
                    .with_rate(0.5)
                    .with_arg(200),
            ),
        ),
        (
            "simulator stall on one benchmark",
            FaultPlan::seeded(42).with(
                FaultSpec::always(Site::SimStall)
                    .with_key(benches[1].name())
                    .with_arg(1 << 40),
            ),
        ),
    ];

    for (label, plan) in plans {
        faults::install(plan);
        let reports = run_cells_reported(&jobs);
        faults::clear();
        assert_eq!(reports.len(), jobs.len());
        let mut degraded = 0usize;
        for (report, base_cell) in reports.iter().zip(&base) {
            match report.cell() {
                // A produced number must be the fault-free number.
                Some(cell) => assert_bit_identical(cell, base_cell, &report.key),
                // A missing number must carry a typed failure kind.
                None => {
                    degraded += 1;
                    let kind = report
                        .failure_kind()
                        .unwrap_or_else(|| panic!("{label}: {}: untyped failure", report.key));
                    assert!(
                        !kind.id().is_empty() && report.failure_reason().is_some(),
                        "{label}: {}: failure without vocabulary id or reason",
                        report.key
                    );
                }
            }
        }
        assert!(
            degraded > 0,
            "{label}: plan never degraded a cell — soak is vacuous"
        );
    }
    std::env::remove_var("BSCHED_BACKOFF_MS");
    std::env::remove_var("BSCHED_RUNS");
}

/// A transient fault (one firing, then quiet) must be invisible in the
/// output: the retry re-evaluates and lands on the fault-free bits.
#[test]
fn transient_faults_recover_bit_identically() {
    let _guard = chaos_lock();
    std::env::set_var("BSCHED_RUNS", "2");
    std::env::set_var("BSCHED_BACKOFF_MS", "0");
    let benches: Vec<Benchmark> = perfect_club().into_iter().take(2).collect();
    let rows = vec![table2_rows()[8].clone()];
    let jobs = slice_jobs(&benches, &rows);
    let base = baseline(&jobs);

    faults::install(FaultPlan::seeded(5).with(FaultSpec::always(Site::EvalPanic).with_limit(1)));
    let reports = run_cells_reported(&jobs);
    faults::clear();
    std::env::remove_var("BSCHED_BACKOFF_MS");
    std::env::remove_var("BSCHED_RUNS");

    let mut recovered = 0usize;
    for (report, base_cell) in reports.iter().zip(&base) {
        let cell = report
            .cell()
            .unwrap_or_else(|| panic!("{}: transient fault was not recovered", report.key));
        assert_bit_identical(cell, base_cell, &report.key);
        if matches!(report.status, bsched_bench::CellStatus::Recovered { .. }) {
            recovered += 1;
        }
    }
    assert!(recovered > 0, "no cell exercised the retry path");
}

/// Crash-safety: evaluate a slice with a journal, truncate the journal
/// to a prefix (a simulated mid-run kill), and re-run. The resumed run
/// must report exactly the surviving prefix as resumed and still land
/// on the fault-free bits for every cell.
#[test]
fn journal_resumes_after_a_simulated_crash() {
    let _guard = chaos_lock();
    std::env::set_var("BSCHED_RUNS", "2");
    let benches: Vec<Benchmark> = perfect_club().into_iter().take(3).collect();
    let rows = vec![table2_rows()[0].clone()];
    let jobs = slice_jobs(&benches, &rows);
    let base = baseline(&jobs);

    let path = std::env::temp_dir().join(format!("bsched-chaos-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    std::env::set_var("BSCHED_JOURNAL", &path);

    let first = run_cells_reported(&jobs);
    assert!(first.iter().all(|r| !r.resumed && r.cell().is_some()));

    // Keep the header plus the first recorded cell: the state a SIGKILL
    // between cells leaves behind.
    let text = std::fs::read_to_string(&path).expect("journal was written");
    let keep: Vec<&str> = text.lines().take(2).collect();
    assert_eq!(keep.len(), 2, "journal should hold a header and cells");
    std::fs::write(&path, format!("{}\n", keep.join("\n"))).unwrap();

    let second = run_cells_reported(&jobs);
    std::env::remove_var("BSCHED_JOURNAL");
    std::env::remove_var("BSCHED_RUNS");
    let _ = std::fs::remove_file(&path);

    assert_eq!(second.iter().filter(|r| r.resumed).count(), 1);
    for (report, base_cell) in second.iter().zip(&base) {
        let cell = report.cell().expect("clean rerun must produce every cell");
        assert_bit_identical(cell, base_cell, &report.key);
    }
}

fn paper_models() -> Vec<MemorySystem> {
    vec![
        CacheModel::l80_5().into(),
        NetworkModel::paper_configs()[0].into(),
        MixedModel::l80_n30_5().into(),
    ]
}

fn arb_block_config() -> impl Strategy<Value = GeneratorConfig> {
    (8usize..40, 0.15f64..0.6, 0.0f64..0.4, 0.0f64..0.2).prop_map(
        |(size, load_fraction, chain_fraction, store_fraction)| GeneratorConfig {
            size,
            load_fraction,
            chain_fraction,
            store_fraction,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every latency a model hands the simulator lies inside the
    /// support it declares — the bound the timeline validator and the
    /// jitter clamp both trust.
    #[test]
    fn memory_models_sample_inside_their_declared_support(
        seed in 0u64..10_000,
        addr in 0u64..1 << 20,
    ) {
        for mem in paper_models() {
            for addr in [None, Some(addr)] {
                mem.begin_run();
                let mut rng = Pcg32::seed_from_u64(seed);
                let lo = mem.min_latency();
                let hi = mem.max_latency();
                for _ in 0..64 {
                    let sample = mem.sample_at(addr, &mut rng);
                    prop_assert!(sample >= lo, "{sample} below declared min {lo}");
                    if let Some(hi) = hi {
                        prop_assert!(sample <= hi, "{sample} above declared max {hi}");
                    }
                }
            }
        }
    }

    /// The jitter clamp never escapes the declared support, however
    /// large the injected extra latency is.
    #[test]
    fn injected_jitter_is_clamped_to_the_support(
        sampled in 0u64..1 << 20,
        extra in 0u64..u64::MAX / 2,
        lo in 0u64..100,
        span in 0u64..1 << 16,
    ) {
        let hi = lo + span;
        let floor = lo.max(1);
        let bounded = faults::jitter_latency(sampled, extra, lo, Some(hi));
        prop_assert!(bounded >= floor && bounded <= hi.max(floor));
        let unbounded = faults::jitter_latency(sampled, extra, lo, None);
        prop_assert!(unbounded >= floor && unbounded >= sampled);
    }

    /// `min_latency_elapsed` is a hard floor on simulated time for all
    /// three paper memory systems, and stays one while a latency-jitter
    /// plan fires on every load: jitter may only slow a run down.
    #[test]
    fn min_latency_floor_survives_injected_jitter(
        cfg in arb_block_config(),
        seed in 0u64..1_000,
    ) {
        let _guard = chaos_lock();
        let mut gen_rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut gen_rng);
        for mem in paper_models() {
            let floor = min_latency_elapsed(&block, mem.min_latency().max(1));
            mem.begin_run();
            let mut rng = Pcg32::seed_from_u64(seed ^ 0xC0FFEE);
            let clean = simulate_block(&block, &mem, ProcessorModel::Unlimited, &mut rng);
            prop_assert!(clean.cycles() >= floor, "clean run beat the floor");

            faults::install(FaultPlan::seeded(seed).with(
                FaultSpec::always(Site::LatencyJitter).with_arg(64),
            ));
            mem.begin_run();
            let mut rng = Pcg32::seed_from_u64(seed ^ 0xC0FFEE);
            let jittered = faults::with_cell_context("chaos-floor", 0, || {
                simulate_block(&block, &mem, ProcessorModel::Unlimited, &mut rng)
            });
            faults::clear();
            prop_assert!(
                jittered.cycles() >= clean.cycles(),
                "jitter sped a run up: {} < {}",
                jittered.cycles(),
                clean.cycles()
            );
            prop_assert!(jittered.cycles() >= floor, "jittered run beat the floor");
        }
    }
}
