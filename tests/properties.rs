//! Property-based tests over randomly generated blocks: invariants that
//! must hold for *any* straight-line program, not just the workload.

use balanced_scheduling::prelude::*;
use balanced_scheduling::sched::compute_priorities;
use balanced_scheduling::stats::SplitMix64;
use balanced_scheduling::workload::{random_block, GeneratorConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (5usize..80, 0.05f64..0.7, 0.0f64..0.5, 0.0f64..0.3).prop_map(
        |(size, load_fraction, chain_fraction, store_fraction)| GeneratorConfig {
            size,
            load_fraction,
            chain_fraction,
            store_fraction,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both schedulers produce valid topological orders for any block,
    /// any alias model, any direction.
    #[test]
    fn schedules_always_verify(cfg in arb_config(), seed in 0u64..1000) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        for alias in [AliasModel::Fortran, AliasModel::CConservative] {
            let dag = build_dag(&block, alias);
            for direction in [Direction::BottomUp, Direction::TopDown] {
                let scheduler = ListScheduler::new().with_direction(direction);
                for assigner in [
                    &BalancedWeights::new() as &dyn WeightAssigner,
                    &TraditionalWeights::new(Ratio::from_int(3)),
                ] {
                    let sched = scheduler.run(&dag, assigner);
                    prop_assert!(sched.verify(&dag).is_ok());
                    prop_assert_eq!(sched.len(), block.len());
                }
            }
        }
    }

    /// Balanced weights are at least 1 on every node and exceed 1 only
    /// on loads.
    #[test]
    fn balanced_weights_bounds(cfg in arb_config(), seed in 0u64..1000) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let dag = build_dag(&block, AliasModel::Fortran);
        let w = BalancedWeights::new().assign(&dag);
        for id in dag.node_ids() {
            prop_assert!(w.weight(id) >= Ratio::ONE);
            if !dag.is_load(id) {
                prop_assert_eq!(w.weight(id), Ratio::ONE);
            }
        }
    }

    /// The sum of balanced weight contributions is conserved: every
    /// instruction donates at most its issue slot per component, so the
    /// total extra weight over all loads is at most n per donor — a loose
    /// but model-independent bound: Σ(w_l − 1) ≤ n·L where L = #loads.
    #[test]
    fn balanced_weight_total_is_bounded(cfg in arb_config(), seed in 0u64..1000) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let dag = build_dag(&block, AliasModel::Fortran);
        let w = BalancedWeights::new().assign(&dag);
        let loads = dag.load_ids();
        let total_extra: Ratio = loads.iter().map(|&l| w.weight(l) - Ratio::ONE).sum();
        let bound = Ratio::from_int((dag.len() * loads.len()) as i64);
        prop_assert!(total_extra <= bound);
    }

    /// Priorities are monotone along dependence edges: a predecessor's
    /// priority strictly exceeds each successor's (weights ≥ 1).
    #[test]
    fn priorities_decrease_along_edges(cfg in arb_config(), seed in 0u64..1000) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let dag = build_dag(&block, AliasModel::Fortran);
        let w = BalancedWeights::new().assign(&dag);
        let p = compute_priorities(&dag, &w);
        for e in dag.edges() {
            prop_assert!(p[e.from.index()] > p[e.to.index()]);
        }
    }

    /// Simulation accounting: cycles = instructions + interlocks, and a
    /// fixed latency of 1 never stalls any schedule.
    #[test]
    fn simulation_accounting(cfg in arb_config(), seed in 0u64..1000, latency in 1u64..12) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let mut sim_rng = Pcg32::seed_from_u64(seed ^ 1);
        let r = simulate_block(&block, &FixedLatency::new(latency), ProcessorModel::Unlimited, &mut sim_rng);
        prop_assert_eq!(r.cycles(), r.instructions + r.interlocks);
        prop_assert_eq!(r.instructions as usize, block.len());
        if latency == 1 {
            prop_assert_eq!(r.interlocks, 0);
        }
    }

    /// Restricted processors never beat UNLIMITED on the same program and
    /// latency draws.
    #[test]
    fn restricted_processors_never_win(cfg in arb_config(), seed in 0u64..1000) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let mem = FixedLatency::new(9);
        let run = |model: ProcessorModel| {
            let mut r = Pcg32::seed_from_u64(seed ^ 2);
            simulate_block(&block, &mem, model, &mut r).cycles()
        };
        let unlimited = run(ProcessorModel::Unlimited);
        prop_assert!(run(ProcessorModel::max_8()) >= unlimited);
        prop_assert!(run(ProcessorModel::len_8()) >= unlimited);
        prop_assert!(run(ProcessorModel::MaxOutstanding(1)) >= run(ProcessorModel::max_8()));
    }

    /// Register allocation preserves the program: instruction count grows
    /// exactly by the spill count, no virtual registers survive, and
    /// every use is dominated by a def.
    #[test]
    fn allocation_preserves_structure(cfg in arb_config(), seed in 0u64..1000) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let result = allocate(&block, &AllocatorConfig::mips_default()).unwrap();
        prop_assert_eq!(result.block.len(), block.len() + result.spill_count());
        let mut defined = std::collections::HashSet::new();
        for inst in result.block.insts() {
            for u in inst.uses() {
                prop_assert!(!u.is_virt());
                prop_assert!(defined.contains(u), "use before def");
            }
            for d in inst.defs() {
                prop_assert!(!d.is_virt());
                defined.insert(*d);
            }
        }
        // Loads and stores balance: every spill store has its slot read
        // at least once (reloads never exceed... stores ≤ loads).
        prop_assert!(result.spill_stores <= result.spill_loads || result.spill_stores == 0);
    }

    /// The full pipeline terminates and verifies on arbitrary blocks.
    #[test]
    fn pipeline_end_to_end(cfg in arb_config(), seed in 0u64..500) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let func = Function::new("prop", vec![block]);
        let prog = Pipeline::default().compile(&func, &SchedulerChoice::balanced()).unwrap();
        let eval = evaluate(
            &prog,
            &CacheModel::l80_5(),
            &EvalConfig { runs: 3, resamples: 10, ..EvalConfig::default() },
        );
        prop_assert!(eval.mean_runtime >= eval.dynamic_instructions);
    }

    /// Monotonicity: raising a uniform fixed latency never makes any
    /// schedule run faster on the UNLIMITED processor.
    #[test]
    fn cycles_are_monotone_in_latency(cfg in arb_config(), seed in 0u64..500) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let run = |latency: u64| {
            let mut r = Pcg32::seed_from_u64(seed ^ 3);
            simulate_block(&block, &FixedLatency::new(latency), ProcessorModel::Unlimited, &mut r)
                .cycles()
        };
        let mut prev = run(1);
        for latency in [2u64, 4, 8, 16] {
            let cur = run(latency);
            prop_assert!(cur >= prev, "latency {latency}: {cur} < {prev}");
            prev = cur;
        }
    }

    /// RNG streams: different split indices give different sequences.
    #[test]
    fn rng_split_streams_differ(seed in 0u64..10_000) {
        let root = Pcg32::seed_from_u64(seed);
        let mut a = root.split(0);
        let mut b = root.split(1);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        prop_assert!(same < 4);
        let mut sm1 = SplitMix64::new(seed);
        let mut sm2 = SplitMix64::new(seed.wrapping_add(1));
        prop_assert_ne!(sm1.next_u64(), sm2.next_u64());
    }
}
