//! Robustness properties: the independent validators in `bsched-verify`
//! accept every real pipeline output (differential testing — the
//! validators re-derive the invariants from scratch, so agreement means
//! both the pipeline and the validators are right, and a divergence
//! pinpoints whichever is wrong), and the kernel parser returns errors
//! rather than panicking on arbitrary input.

use balanced_scheduling::pipeline::AllocationStrategy;
use balanced_scheduling::prelude::*;
use balanced_scheduling::workload::{parse_kernel, random_block, GeneratorConfig};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (5usize..60, 0.05f64..0.7, 0.0f64..0.5, 0.0f64..0.3).prop_map(
        |(size, load_fraction, chain_fraction, store_fraction)| GeneratorConfig {
            size,
            load_fraction,
            chain_fraction,
            store_fraction,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every scheduler × allocator × renaming combination compiles any
    /// random block with zero findings at full validation: both
    /// scheduling passes are independently re-verified as topological
    /// orders, and the allocated block is value-flow checked against
    /// its pre-allocation input.
    #[test]
    fn full_validation_accepts_every_compilation(cfg in arb_config(), seed in 0u64..500) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let schedulers = [
            SchedulerChoice::balanced(),
            SchedulerChoice::traditional(Ratio::from_int(2)),
            SchedulerChoice::Average,
        ];
        for allocation in [AllocationStrategy::BeladyScan, AllocationStrategy::UsageCount] {
            for rename_after_alloc in [false, true] {
                let pipeline = Pipeline {
                    allocation,
                    rename_after_alloc,
                    validation: ValidationLevel::Full,
                    ..Pipeline::default()
                };
                for choice in &schedulers {
                    let out = pipeline.compile_block(&block, choice);
                    prop_assert!(
                        out.is_ok(),
                        "{allocation:?}/rename={rename_after_alloc}/{}: {}",
                        choice.name(),
                        out.err().map_or_else(String::new, |e| e.to_string()),
                    );
                }
            }
        }
    }

    /// Simulated timelines of fully compiled random programs satisfy
    /// the timeline validator end to end (wired through `EvalConfig`).
    #[test]
    fn full_validation_accepts_every_timeline(cfg in arb_config(), seed in 0u64..500) {
        use balanced_scheduling::pipeline::try_evaluate;
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let func = Function::new("fuzz", vec![block]);
        let pipeline = Pipeline {
            validation: ValidationLevel::Full,
            ..Pipeline::default()
        };
        let prog = pipeline.compile(&func, &SchedulerChoice::balanced()).unwrap();
        let cfg = EvalConfig {
            runs: 3,
            validation: ValidationLevel::Full,
            ..EvalConfig::default()
        };
        let mem = NetworkModel::new(3.0, 2.0);
        let eval = try_evaluate(&prog, &mem, &cfg);
        prop_assert!(eval.is_ok(), "{}", eval.err().map_or_else(String::new, |e| e.to_string()));
    }

    /// The parser never panics: any input produces a kernel or a
    /// located `ParseError`. Inputs mix arbitrary unicode noise with
    /// kernel-shaped tokens, which reach much deeper into the grammar
    /// than uniform noise does.
    #[test]
    fn parser_never_panics(seed in 0u64..20_000, len in 0usize..120, shaped in 0u32..2) {
        const TOKENS: &[&str] = &[
            "kernel", "k", "arrays", "accs", "frequency", "a[i]", "b[i+1]",
            "c[0]", "s", "=", "+", "*", "-", ";", "{", "}", "\n", " ",
            "3.5", "42", ".", "a[", "]", "kernel k {",
        ];
        const NOISE: &[char] = &['\0', 'é', '🦀', '\t', '"', '\\', 'x', '7', '\u{202e}'];
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut input = String::new();
        for _ in 0..len {
            if shaped == 1 {
                input.push_str(TOKENS[rng.next_index(TOKENS.len())]);
            } else {
                input.push(NOISE[rng.next_index(NOISE.len())]);
            }
        }
        let _ = parse_kernel(&input);
    }
}
