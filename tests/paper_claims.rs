//! Integration tests asserting the paper's qualitative claims end-to-end
//! through the whole stack (workload → DAG → scheduling → regalloc →
//! simulation → statistics).
//!
//! Runs are shortened (8 instead of 30) to keep debug-mode test time
//! reasonable; the bench binaries use the full protocol.

use balanced_scheduling::prelude::*;

fn quick_cfg(processor: ProcessorModel) -> EvalConfig {
    EvalConfig {
        runs: 8,
        processor,
        ..EvalConfig::default()
    }
}

fn improvement_for(
    bench: &Benchmark,
    mem: &dyn LatencyModel,
    optimistic: Ratio,
    processor: ProcessorModel,
) -> f64 {
    let pipeline = Pipeline::default();
    let balanced = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .unwrap();
    let traditional = pipeline
        .compile(bench.function(), &SchedulerChoice::traditional(optimistic))
        .unwrap();
    let cfg = quick_cfg(processor);
    compare(
        &evaluate(&traditional, mem, &cfg),
        &evaluate(&balanced, mem, &cfg),
    )
    .mean_percent
}

/// §5 headline: balanced scheduling improves execution time on the
/// workload under every paper memory system with real uncertainty
/// (suite mean; individual benchmarks may fluctuate).
#[test]
fn balanced_improves_suite_mean_under_uncertain_systems() {
    let suite = perfect_club();
    for mem in [
        MemorySystem::Cache(CacheModel::l80_5()),
        MemorySystem::Cache(CacheModel::l80_10()),
        MemorySystem::Network(NetworkModel::new(2.0, 5.0)),
        MemorySystem::Mixed(MixedModel::l80_n30_5()),
    ] {
        let mean: f64 = suite
            .iter()
            .map(|b| improvement_for(b, &mem, Ratio::from_int(2), ProcessorModel::Unlimited))
            .sum::<f64>()
            / suite.len() as f64;
        assert!(mean > 2.0, "suite mean under {} is {mean:.1}%", mem.name());
    }
}

/// §5: "The balanced scheduler does relatively better as the uncertainty
/// of the load instruction latencies increases" — higher miss penalty.
#[test]
fn improvement_grows_with_miss_penalty() {
    let suite = perfect_club();
    let mean = |mem: &dyn LatencyModel| -> f64 {
        suite
            .iter()
            .map(|b| improvement_for(b, mem, Ratio::from_int(2), ProcessorModel::Unlimited))
            .sum::<f64>()
            / suite.len() as f64
    };
    let low = mean(&CacheModel::l80_5());
    let high = mean(&CacheModel::l80_10());
    assert!(
        high > low,
        "L80(2,10) {high:.1}% should beat L80(2,5) {low:.1}%"
    );
}

/// §5: …and with lower hit rate (L80 vs L95).
#[test]
fn improvement_grows_with_miss_rate() {
    let suite = perfect_club();
    let mean = |mem: &dyn LatencyModel| -> f64 {
        suite
            .iter()
            .map(|b| improvement_for(b, mem, Ratio::from_int(2), ProcessorModel::Unlimited))
            .sum::<f64>()
            / suite.len() as f64
    };
    let l95 = mean(&CacheModel::l95_10());
    let l80 = mean(&CacheModel::l80_10());
    assert!(l80 > l95, "L80 {l80:.1}% should beat L95 {l95:.1}%");
}

/// §5: …and with higher network variance (σ = 5 vs σ = 2).
#[test]
fn improvement_grows_with_network_variance() {
    let suite = perfect_club();
    let mean = |mem: &dyn LatencyModel| -> f64 {
        suite
            .iter()
            .map(|b| improvement_for(b, mem, Ratio::from_int(2), ProcessorModel::Unlimited))
            .sum::<f64>()
            / suite.len() as f64
    };
    let sigma2 = mean(&NetworkModel::new(2.0, 2.0));
    let sigma5 = mean(&NetworkModel::new(2.0, 5.0));
    assert!(
        sigma5 > sigma2,
        "N(2,5) {sigma5:.1}% should beat N(2,2) {sigma2:.1}%"
    );
}

/// §5 / Table 5: with N(30,5) the mean latency exceeds the available
/// load-level parallelism, so "there is no guarantee the balanced
/// scheduler will do better" — the suite mean collapses toward zero or
/// below, unlike every uncertain system above.
#[test]
fn n30_pathology_collapses_improvement() {
    let suite = perfect_club();
    let mem = NetworkModel::new(30.0, 5.0);
    let mean: f64 = suite
        .iter()
        .map(|b| improvement_for(b, &mem, Ratio::from_int(30), ProcessorModel::Unlimited))
        .sum::<f64>()
        / suite.len() as f64;
    assert!(mean < 2.0, "N(30,5) mean should collapse, got {mean:.1}%");
}

/// Table 5: under N(30,5) both schedulers spend most cycles interlocked.
#[test]
fn n30_interlocks_dominate_for_both_schedulers() {
    let bench = balanced_scheduling::workload::perfect::track();
    let pipeline = Pipeline::default();
    let mem = NetworkModel::new(30.0, 5.0);
    let cfg = quick_cfg(ProcessorModel::Unlimited);
    for choice in [
        SchedulerChoice::balanced(),
        SchedulerChoice::traditional(Ratio::from_int(30)),
    ] {
        let prog = pipeline.compile(bench.function(), &choice).unwrap();
        let eval = evaluate(&prog, &mem, &cfg);
        assert!(
            eval.interlock_percent() > 50.0,
            "{}: interlocks {:.1}%",
            choice.name(),
            eval.interlock_percent()
        );
    }
}

/// Table 3 shape: MDG is the workload's showcase — large balanced
/// interlock reduction (BI% well under TI%) on the cache systems.
#[test]
fn mdg_interlock_reduction() {
    let bench = balanced_scheduling::workload::perfect::mdg();
    let pipeline = Pipeline::default();
    let mem = CacheModel::l80_10();
    let cfg = quick_cfg(ProcessorModel::Unlimited);
    let bal = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .unwrap();
    let trad = pipeline
        .compile(
            bench.function(),
            &SchedulerChoice::traditional(Ratio::from_int(2)),
        )
        .unwrap();
    let b = evaluate(&bal, &mem, &cfg);
    let t = evaluate(&trad, &mem, &cfg);
    assert!(
        b.interlock_percent() < t.interlock_percent() / 2.0,
        "BI% {:.1} vs TI% {:.1}",
        b.interlock_percent(),
        t.interlock_percent()
    );
}

/// §4.4: the restricted processor models never *help*; LEN-8 under a
/// long-latency system hurts both schedulers relative to UNLIMITED.
#[test]
fn len8_hurts_under_long_latencies() {
    let bench = balanced_scheduling::workload::perfect::adm();
    let pipeline = Pipeline::default();
    let prog = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .unwrap();
    let mem = MixedModel::l80_n30_5();
    let unlimited = evaluate(&prog, &mem, &quick_cfg(ProcessorModel::Unlimited));
    let len8 = evaluate(&prog, &mem, &quick_cfg(ProcessorModel::len_8()));
    assert!(
        len8.mean_runtime > unlimited.mean_runtime,
        "LEN-8 {} vs UNLIMITED {}",
        len8.mean_runtime,
        unlimited.mean_runtime
    );
}

/// §3: the block-average alternative fails exactly when "load level
/// parallelism typically varies within a basic block" — it ignores
/// parallelism above the average for some loads "while unrealistically
/// allocating nonexistent parallelism to others". Build such an
/// imbalanced block (one load swimming in parallelism plus a serial
/// pointer chase with none) and check per-load balanced weights beat the
/// flattened average at runtime.
#[test]
fn average_weights_lose_to_balanced_on_imbalanced_blocks() {
    let mut b = BlockBuilder::new("imbalanced");
    let region = b.fresh_region();
    let base = b.def_int("base");
    // The lucky load: every independent instruction can pad it.
    let lucky = b.load_region("lucky", region, base, Some(0));
    // A serial pointer chase: four loads with zero parallelism available
    // to the later links.
    let mut addr = base;
    let mut last = lucky;
    for k in 0..4 {
        let v = b.load_region("chase", region, addr, Some(8 * (k + 1)));
        addr = b.int_to_addr("a", v);
        last = v;
    }
    // Independent arithmetic that could hide latencies.
    let mut acc = b.fconst("c", 1.0);
    for _ in 0..8 {
        acc = b.fmul("m", acc, acc);
    }
    let merged = b.fadd("merge", lucky, last);
    let fin = b.fadd("fin", merged, acc);
    b.store_region(region, fin, base, Some(999));
    let func = Function::new("imbalanced", vec![b.finish()]);

    let pipeline = Pipeline::default();
    let mem = NetworkModel::new(2.0, 5.0);
    let cfg = quick_cfg(ProcessorModel::Unlimited);
    let bal = pipeline
        .compile(&func, &SchedulerChoice::balanced())
        .unwrap();
    let avg = pipeline.compile(&func, &SchedulerChoice::Average).unwrap();
    let bal_runtime = evaluate(&bal, &mem, &cfg).mean_runtime;
    let avg_runtime = evaluate(&avg, &mem, &cfg).mean_runtime;
    assert!(
        bal_runtime <= avg_runtime,
        "balanced {bal_runtime:.1} vs average {avg_runtime:.1}"
    );
}

/// Every compiled schedule in the whole workload is a valid topological
/// order and entirely physical after allocation.
#[test]
fn whole_suite_compiles_validly_with_both_schedulers() {
    let pipeline = Pipeline::default();
    for bench in perfect_club() {
        for choice in [
            SchedulerChoice::balanced(),
            SchedulerChoice::traditional(Ratio::from_int(2)),
        ] {
            let prog = pipeline.compile(bench.function(), &choice).unwrap();
            for (cb, original) in prog.blocks.iter().zip(bench.function().blocks()) {
                assert_eq!(cb.block.len(), original.len() + cb.spill_count);
                assert!(cb.block.insts().iter().all(|i| i
                    .defs()
                    .iter()
                    .chain(i.uses())
                    .all(|r| !r.is_virt())));
                // Rebuilding a DAG over the final block must still be
                // acyclic with forward edges (sanity of the whole chain).
                let dag = build_dag(&cb.block, AliasModel::Fortran);
                assert!(dag.edges().all(|e| e.from < e.to));
            }
        }
    }
}

/// §6: "techniques that enlarge basic blocks" give the balanced
/// scheduler more parallelism to distribute. Fusing independent blocks
/// into superblocks must not *shrink* each load's balanced weight, and
/// the fused program still compiles and wins under uncertainty.
#[test]
fn superblocks_expose_more_parallelism() {
    use balanced_scheduling::sched::BalancedWeights;
    use balanced_scheduling::workload::{kernels, lower_kernel, superblocks_of};

    let func = Function::new(
        "f",
        vec![
            lower_kernel(&kernels::daxpy().with_unroll(2), 100.0),
            lower_kernel(&kernels::stencil3().with_unroll(2), 100.0),
        ],
    );
    let fused = superblocks_of(&func, 2);
    assert_eq!(fused.len(), 1);
    let fused_func = Function::new("fused", fused);

    // Per-load balanced weight grows in the superblock.
    let small_dag = build_dag(&func.blocks()[0], AliasModel::Fortran);
    let big_dag = build_dag(&fused_func.blocks()[0], AliasModel::Fortran);
    let max_weight = |dag: &balanced_scheduling::dag::CodeDag| {
        let w = BalancedWeights::new().assign(dag);
        dag.load_ids().iter().map(|&l| w.weight(l)).max().unwrap()
    };
    assert!(max_weight(&big_dag) > max_weight(&small_dag));

    // The fused program still flows through the whole pipeline and
    // beats traditional under uncertainty.
    let mem = NetworkModel::new(2.0, 5.0);
    let pipeline = Pipeline::default();
    let bal = pipeline
        .compile(&fused_func, &SchedulerChoice::balanced())
        .unwrap();
    let trad = pipeline
        .compile(
            &fused_func,
            &SchedulerChoice::traditional(Ratio::from_int(2)),
        )
        .unwrap();
    let cfg = quick_cfg(ProcessorModel::Unlimited);
    let imp = compare(&evaluate(&trad, &mem, &cfg), &evaluate(&bal, &mem, &cfg));
    assert!(imp.mean_percent > 0.0, "{imp}");
}

/// The vintage usage-count allocator (GCC 2.x regime) spills at least as
/// much as the default Belady linear scan across the whole workload, for
/// both schedulers.
#[test]
fn usage_count_allocator_never_beats_belady() {
    use balanced_scheduling::pipeline::AllocationStrategy;
    let modern = Pipeline::default();
    let vintage = Pipeline {
        allocation: AllocationStrategy::UsageCount,
        ..Pipeline::default()
    };
    for bench in perfect_club() {
        for choice in [
            SchedulerChoice::balanced(),
            SchedulerChoice::traditional(Ratio::from_int(30)),
        ] {
            let a = modern.compile(bench.function(), &choice).unwrap();
            let b = vintage.compile(bench.function(), &choice).unwrap();
            assert!(
                b.spill_percent() >= a.spill_percent(),
                "{} {}: vintage {:.2}% vs belady {:.2}%",
                bench.name(),
                choice.name(),
                b.spill_percent(),
                a.spill_percent()
            );
        }
    }
}

/// The bursty Markov congestion model (time-*correlated* latencies —
/// the §2 "worst scheduling situation … as congestion in the
/// interconnect varies"): balanced scheduling still wins, since its
/// schedules never committed to any particular latency.
#[test]
fn balanced_wins_under_bursty_congestion() {
    use balanced_scheduling::memsim::MarkovNetworkModel;
    let suite = perfect_club();
    let mem = MarkovNetworkModel::bursty();
    let mean: f64 = suite
        .iter()
        .map(|b| improvement_for(b, &mem, Ratio::from_int(2), ProcessorModel::Unlimited))
        .sum::<f64>()
        / suite.len() as f64;
    assert!(mean > 2.0, "suite mean under bursty congestion: {mean:.1}%");
}

/// §6 superscalar: on a dual-issue machine the comparison still favours
/// balanced scheduling, and elapsed runtimes shrink for both schedulers.
#[test]
fn dual_issue_preserves_the_comparison() {
    let bench = balanced_scheduling::workload::perfect::adm();
    let pipeline = Pipeline::default();
    let bal = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .unwrap();
    let trad = pipeline
        .compile(
            bench.function(),
            &SchedulerChoice::traditional(Ratio::from_int(2)),
        )
        .unwrap();
    let mem = NetworkModel::new(2.0, 5.0);
    let single = EvalConfig {
        runs: 8,
        ..EvalConfig::default()
    };
    let dual = EvalConfig {
        runs: 8,
        issue_width: 2,
        ..EvalConfig::default()
    };

    let b1 = evaluate(&bal, &mem, &single);
    let b2 = evaluate(&bal, &mem, &dual);
    let t2 = evaluate(&trad, &mem, &dual);
    assert!(
        b2.mean_runtime < b1.mean_runtime,
        "dual issue speeds execution up"
    );
    let imp = compare(&t2, &b2);
    assert!(
        imp.mean_percent > 0.0,
        "balanced still wins at width 2: {imp}"
    );
}

/// Determinism: the same seed reproduces identical percentages.
#[test]
fn full_experiment_is_deterministic() {
    let bench = balanced_scheduling::workload::perfect::flo52q();
    let mem = NetworkModel::new(3.0, 5.0);
    let a = improvement_for(&bench, &mem, Ratio::from_int(3), ProcessorModel::Unlimited);
    let b = improvement_for(&bench, &mem, Ratio::from_int(3), ProcessorModel::Unlimited);
    assert_eq!(a, b);
}
