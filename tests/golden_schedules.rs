//! Golden-schedule regression tests.
//!
//! The exact instruction orders below were produced by the current
//! scheduler and reviewed once; any change to weight computation,
//! priorities, tie-breaks or the list-scheduler loop that alters them
//! will trip these tests. When a change is *intended*, regenerate the
//! expectations (each vector is the schedule's `InstId` order) and
//! re-review the schedules by hand — the point is that schedule changes
//! never land silently, since every experiment number depends on them.

use balanced_scheduling::prelude::*;
use balanced_scheduling::workload::{kernels, lower_kernel, Kernel};

fn golden() -> Vec<(&'static str, Kernel)> {
    vec![
        ("daxpy2", kernels::daxpy().with_unroll(2)),
        ("dot2", kernels::dot().with_unroll(2)),
        ("stencil3", kernels::stencil3()),
        ("md_force", kernels::md_force()),
        ("fft", kernels::fft_butterfly()),
    ]
}

fn schedule_order(kernel: &Kernel, assigner: &dyn WeightAssigner) -> Vec<u32> {
    let block = lower_kernel(kernel, 1.0);
    let dag = build_dag(&block, AliasModel::Fortran);
    let sched = ListScheduler::new().run(&dag, assigner);
    assert!(sched.verify(&dag).is_ok());
    sched.order().iter().map(|i| i.raw()).collect()
}

#[test]
fn balanced_schedules_are_stable() {
    let expected: Vec<(&str, Vec<u32>)> = vec![
        ("daxpy2", vec![1, 11, 0, 9, 5, 3, 8, 10, 12, 13, 2, 4, 6, 7]),
        ("dot2", vec![1, 8, 0, 7, 4, 3, 9, 2, 5, 6, 10]),
        ("stencil3", vec![0, 6, 4, 3, 1, 2, 5, 7, 8, 9]),
        (
            "md_force",
            vec![
                5, 20, 1, 14, 0, 13, 4, 19, 3, 17, 2, 16, 12, 11, 10, 9, 8, 22, 15, 23, 21, 25, 18,
                24, 26, 27, 28, 33, 34, 7, 31, 32, 6, 29, 30,
            ],
        ),
        (
            "fft",
            vec![
                1, 11, 2, 12, 3, 13, 0, 10, 9, 8, 7, 6, 5, 4, 21, 22, 19, 20, 23, 30, 31, 16, 17,
                14, 15, 18, 28, 29, 26, 27, 24, 25,
            ],
        ),
    ];
    for ((name, kernel), (ename, order)) in golden().iter().zip(&expected) {
        assert_eq!(name, ename);
        assert_eq!(
            &schedule_order(kernel, &BalancedWeights::new()),
            order,
            "balanced schedule drifted for {name}"
        );
    }
}

#[test]
fn traditional_schedules_are_stable() {
    let expected: Vec<(&str, Vec<u32>)> = vec![
        ("daxpy2", vec![8, 1, 0, 9, 11, 10, 12, 13, 2, 3, 5, 4, 6, 7]),
        ("dot2", vec![1, 8, 0, 7, 9, 4, 3, 2, 5, 6, 10]),
        ("stencil3", vec![1, 2, 0, 4, 3, 6, 5, 7, 8, 9]),
        (
            "md_force",
            vec![
                12, 11, 10, 9, 8, 1, 14, 0, 13, 22, 15, 5, 20, 4, 19, 23, 21, 3, 17, 2, 16, 25, 18,
                24, 26, 27, 28, 33, 34, 7, 31, 32, 6, 29, 30,
            ],
        ),
        (
            "fft",
            vec![
                9, 8, 7, 6, 5, 4, 1, 11, 2, 12, 21, 22, 3, 13, 19, 20, 23, 30, 31, 0, 10, 16, 17,
                14, 15, 18, 28, 29, 26, 27, 24, 25,
            ],
        ),
    ];
    let assigner = TraditionalWeights::new(Ratio::from_int(2));
    for ((name, kernel), (ename, order)) in golden().iter().zip(&expected) {
        assert_eq!(name, ename);
        assert_eq!(
            &schedule_order(kernel, &assigner),
            order,
            "traditional schedule drifted for {name}"
        );
    }
}

#[test]
fn schedulers_actually_differ_on_every_golden_kernel() {
    // If both schedulers ever emitted identical orders on all kernels,
    // the experiments would be comparing a scheduler against itself.
    let trad = TraditionalWeights::new(Ratio::from_int(2));
    for (name, kernel) in golden() {
        assert_ne!(
            schedule_order(&kernel, &BalancedWeights::new()),
            schedule_order(&kernel, &trad),
            "{name}: schedulers coincide"
        );
    }
}
