//! End-to-end tests of the §6 multi-cycle FP extension: fixed FP-unit
//! latencies flow through weights, scheduling and simulation.

use balanced_scheduling::cpusim::simulate_block_custom;
use balanced_scheduling::ir::{OpLatencies, Opcode};
use balanced_scheduling::prelude::*;
use balanced_scheduling::sched::compute_priorities;

/// `base; x=load; q = x/x; r = q*q; out = r+r; store` plus independent
/// constants to pad with.
fn fp_block() -> BasicBlock {
    let mut b = BlockBuilder::new("fp");
    let region = b.fresh_region();
    let base = b.def_int("base");
    let x = b.load_region("x", region, base, Some(0));
    let q = b.fdiv("q", x, x);
    let r = b.fmul("r", q, q);
    let out = b.fadd("out", r, r);
    for k in 0..6 {
        let _ = b.fconst(&format!("c{k}"), f64::from(k));
    }
    b.store_region(region, out, base, Some(64));
    b.finish()
}

#[test]
fn fp_latencies_raise_nonload_weights() {
    let block = fp_block();
    let dag = build_dag(&block, AliasModel::Fortran);
    let unit = BalancedWeights::new().assign(&dag);
    let fpu = BalancedWeights::new()
        .with_op_latencies(OpLatencies::mips_fpu())
        .assign(&dag);
    for (id, inst) in block.iter_ids() {
        match inst.opcode() {
            Opcode::FDiv => assert_eq!(fpu.weight(id), Ratio::from_int(12)),
            Opcode::FMul => assert_eq!(fpu.weight(id), Ratio::from_int(4)),
            Opcode::FAdd => assert_eq!(fpu.weight(id), Ratio::from_int(2)),
            _ => {}
        }
        if !inst.is_load() && !inst.opcode().is_store() {
            assert!(fpu.weight(id) >= unit.weight(id));
        }
    }
    // Load weights are still parallelism-driven, not table-driven.
    let load = block.load_ids()[0];
    assert!(fpu.weight(load) > Ratio::ONE);
}

#[test]
fn fp_latencies_shape_priorities_and_schedules() {
    let block = fp_block();
    let dag = build_dag(&block, AliasModel::Fortran);
    let trad_fpu =
        TraditionalWeights::new(Ratio::from_int(2)).with_op_latencies(OpLatencies::mips_fpu());
    let weights = trad_fpu.assign(&dag);
    let p = compute_priorities(&dag, &weights);
    // The chain store←out←r←q←x accumulates 1+2+4+12 beneath the load.
    let q_id = block
        .iter_ids()
        .find(|(_, i)| i.opcode() == Opcode::FDiv)
        .unwrap()
        .0;
    assert!(p[q_id.index()] >= Ratio::from_int(12 + 4 + 2 + 1));

    // The scheduler pads after the divide: its consumer sits ≥ 12 slots
    // later in the assumed schedule.
    let sched = ListScheduler::new().run(&dag, &trad_fpu);
    assert!(sched.verify(&dag).is_ok());
    let slot_of = |needle: Opcode| {
        sched
            .order()
            .iter()
            .position(|&i| block.inst(i).opcode() == needle)
            .map(|pos| sched.slots()[pos])
            .unwrap()
    };
    assert!(slot_of(Opcode::FMul) >= slot_of(Opcode::FDiv) + 12);
}

#[test]
fn simulator_honours_fp_latencies() {
    let block = fp_block();
    let mut rng = Pcg32::seed_from_u64(0);
    let (unit_result, _) = simulate_block_custom(
        &block,
        &FixedLatency::new(1),
        ProcessorModel::Unlimited,
        1,
        OpLatencies::unit(),
        &mut rng,
    );
    let mut rng = Pcg32::seed_from_u64(0);
    let (fpu_result, _) = simulate_block_custom(
        &block,
        &FixedLatency::new(1),
        ProcessorModel::Unlimited,
        1,
        OpLatencies::mips_fpu(),
        &mut rng,
    );
    assert_eq!(
        unit_result.interlocks, 0,
        "unit latencies never stall this order"
    );
    // The source order has mul right after div and add right after mul:
    // stalls of (12−1) + (4−1) + (2−1) = 15 before the padding constants.
    // Constants between add and store absorb some of the add's latency;
    // exact accounting: div waits nothing (x ready), mul waits 11,
    // add waits 3, store placed after 6 constants waits 0.
    assert_eq!(fpu_result.interlocks, 11 + 3, "{fpu_result}");
}

#[test]
fn scheduling_for_the_fpu_pays_off_in_cycles() {
    // Schedule once assuming unit FP latencies and once with the FPU
    // table; execute both on the FPU machine. The FPU-aware schedule must
    // not be slower.
    let block = fp_block();
    let dag = build_dag(&block, AliasModel::Fortran);
    let naive = ListScheduler::new().run(&dag, &TraditionalWeights::new(Ratio::from_int(2)));
    let aware = ListScheduler::new().run(
        &dag,
        &TraditionalWeights::new(Ratio::from_int(2)).with_op_latencies(OpLatencies::mips_fpu()),
    );
    let cycles = |sched: &Schedule| {
        let ordered = sched.apply(&block);
        let mut rng = Pcg32::seed_from_u64(3);
        simulate_block_custom(
            &ordered,
            &FixedLatency::new(2),
            ProcessorModel::Unlimited,
            1,
            OpLatencies::mips_fpu(),
            &mut rng,
        )
        .0
        .cycles()
    };
    assert!(
        cycles(&aware) <= cycles(&naive),
        "{} vs {}",
        cycles(&aware),
        cycles(&naive)
    );
}
