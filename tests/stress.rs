//! Long-running randomized stress of the full pipeline, `#[ignore]`d by
//! default. Run with:
//!
//! ```console
//! cargo test --release --test stress -- --ignored
//! ```

use balanced_scheduling::prelude::*;
use balanced_scheduling::workload::{random_block, GeneratorConfig};

/// One thousand random programs through compile → evaluate under rotating
/// schedulers, memory systems and processor models. Asserts only
/// structural invariants; the value is the breadth of inputs exercised.
#[test]
#[ignore = "long-running stress; invoke explicitly with -- --ignored"]
fn pipeline_survives_a_thousand_random_programs() {
    let systems: Vec<MemorySystem> = MemorySystem::paper_systems();
    let pipeline = Pipeline::default();
    for seed in 0..1000u64 {
        let cfg = GeneratorConfig {
            size: 10 + (seed % 90) as usize,
            load_fraction: 0.1 + (seed % 7) as f64 * 0.07,
            chain_fraction: (seed % 5) as f64 * 0.1,
            store_fraction: (seed % 4) as f64 * 0.08,
        };
        let mut rng = Pcg32::seed_from_u64(seed);
        let block = random_block(&cfg, &mut rng);
        let func = Function::new("stress", vec![block]);

        let choice = match seed % 3 {
            0 => SchedulerChoice::balanced(),
            1 => SchedulerChoice::traditional(Ratio::from_int(1 + (seed % 12) as i64)),
            _ => SchedulerChoice::Average,
        };
        let prog = pipeline.compile(&func, &choice).expect("compile");
        assert!(prog.dynamic_instructions() >= func.inst_count() as f64);

        let mem = &systems[(seed % systems.len() as u64) as usize];
        let processor = ProcessorModel::paper_models()[(seed % 3) as usize];
        let eval = evaluate(
            &prog,
            mem,
            &EvalConfig {
                runs: 3,
                resamples: 10,
                processor,
                seed,
                ..EvalConfig::default()
            },
        );
        assert!(
            eval.mean_runtime >= eval.dynamic_instructions,
            "seed {seed}"
        );
        assert!(eval.interlock_percent() >= 0.0 && eval.interlock_percent() < 100.0);
    }
}
