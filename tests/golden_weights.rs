//! Golden balanced-weight snapshots for every block of the workload.
//!
//! Each entry records the exact sum and maximum of the per-load balanced
//! weights of one benchmark block (exact rationals, printed in the
//! `Ratio` display format). Any change to the Fig. 6 implementation, the
//! dependence builder, or the workload definition shows up here before
//! it silently shifts every experiment table. Regenerate by printing
//! `(name, Σ weights, max weight)` per block after an intended change.

use balanced_scheduling::prelude::*;
use balanced_scheduling::sched::BalancedWeights;

const GOLDEN: &[(&str, &str, &str)] = &[
    ("ADM.b0.daxpy", "99", "17"),
    ("ADM.b1.stencil3", "80", "14"),
    ("ADM.b2.dot", "116", "16"),
    ("ADM.b3.matvec_row", "112", "14"),
    ("ARC2D.b0.stencil5", "666", "46"),
    ("ARC2D.b1.stencil5", "284", "30"),
    ("ARC2D.b2.stencil3", "352", "30"),
    ("ARC2D.b3.daxpy", "180", "23"),
    ("BDNA.b0.gather", "128", "16"),
    ("BDNA.b1.md_force", "140", "24"),
    ("BDNA.b2.dot", "180", "20"),
    ("BDNA.b3.gather", "72", "12"),
    ("FLO52Q.b0.stencil3", "192", "22"),
    ("FLO52Q.b1.fft_butterfly", "92", "27"),
    ("FLO52Q.b2.daxpy", "99", "17"),
    ("FLO52Q.b3.recurrence", "108", "17"),
    ("MDG.b0.md_force", "140", "24"),
    ("MDG.b1.md_force", "140", "24"),
    ("MDG.b2.dot", "258", "24"),
    ("MDG.b3.daxpy", "99", "17"),
    ("MG3D.b0.matvec_row", "112", "14"),
    ("MG3D.b1.daxpy", "285", "29"),
    ("MG3D.b2.stencil3", "192", "22"),
    ("MG3D.b3.dot", "456", "32"),
    ("QCD2.b0.fft_butterfly", "360", "49"),
    ("QCD2.b1.fft_butterfly", "360", "49"),
    ("QCD2.b2.md_force", "140", "24"),
    ("QCD2.b3.fft_butterfly", "804", "71"),
    ("TRACK.b0.recurrence", "30", "9"),
    ("TRACK.b1.daxpy", "9", "5"),
    ("TRACK.b2.dot", "30", "8"),
    ("TRACK.b3.gather", "8", "4"),
];

#[test]
fn workload_balanced_weights_are_stable() {
    let mut golden = GOLDEN.iter();
    for bench in perfect_club() {
        for block in bench.function().blocks() {
            let (name, total_expected, max_expected) =
                golden.next().expect("golden table covers every block");
            assert_eq!(block.name(), *name, "workload structure changed");
            let dag = build_dag(block, AliasModel::Fortran);
            let w = BalancedWeights::new().assign(&dag);
            let loads = dag.load_ids();
            let total: Ratio = loads.iter().map(|&l| w.weight(l)).sum();
            let max = loads
                .iter()
                .map(|&l| w.weight(l))
                .max()
                .expect("blocks have loads");
            assert_eq!(
                total.to_string(),
                *total_expected,
                "{name}: total weight drifted"
            );
            assert_eq!(max.to_string(), *max_expected, "{name}: max weight drifted");
        }
    }
    assert!(
        golden.next().is_none(),
        "golden table has stale extra entries"
    );
}

/// Sanity on the snapshot itself: the known profile ordering holds —
/// QCD2's pressure-heavy butterflies carry the workload's largest
/// weights, TRACK's serial blocks the smallest.
#[test]
fn snapshot_reflects_benchmark_profiles() {
    let max_of = |prefix: &str| {
        GOLDEN
            .iter()
            .filter(|(n, _, _)| n.starts_with(prefix))
            .map(|(_, _, m)| m.parse::<i64>().unwrap_or(0))
            .max()
            .unwrap()
    };
    assert!(max_of("QCD2") > max_of("ADM"));
    assert!(max_of("TRACK") < max_of("MDG"));
}
