//! Differential tests for the work-stealing execution path.
//!
//! `evaluate` promises bit-identical results to `evaluate_serial`
//! however the per-block work is scheduled across workers: per-block
//! streams depend only on the block index and master seed, and block
//! contributions are folded in block order. The tests here exercise
//! that contract across the whole Perfect Club stand-in suite, both
//! schedulers, and several `BSCHED_THREADS` settings — including 7,
//! which oversubscribes any test machine and forces heavy stealing on
//! the Chase–Lev deques.
//!
//! The tests live in their own integration-test binary (own process)
//! because they mutate `BSCHED_THREADS`; a single `#[test]` body keeps
//! the env mutations ordered even with a multi-threaded test harness.

use balanced_scheduling::prelude::*;
use bsched_pipeline::{evaluate_serial, ProgramEval};

/// Restores `BSCHED_THREADS` on scope exit, panic or not.
struct ThreadsGuard {
    previous: Option<String>,
}

impl ThreadsGuard {
    fn set(value: &str) -> Self {
        let previous = std::env::var("BSCHED_THREADS").ok();
        std::env::set_var("BSCHED_THREADS", value);
        ThreadsGuard { previous }
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        match &self.previous {
            Some(v) => std::env::set_var("BSCHED_THREADS", v),
            None => std::env::remove_var("BSCHED_THREADS"),
        }
    }
}

fn quick_cfg() -> EvalConfig {
    EvalConfig {
        runs: 6,
        ..EvalConfig::default()
    }
}

/// Bit-exact comparison: `assert_eq!` on floats would accept `-0.0 ==
/// 0.0` and reject NaN; the parity contract is about the exact bits the
/// fold produces.
fn assert_bits_eq(serial: &ProgramEval, parallel: &ProgramEval, ctx: &str) {
    assert_eq!(
        serial.bootstrap_runtimes.len(),
        parallel.bootstrap_runtimes.len(),
        "{ctx}: resample count diverged"
    );
    for (i, (s, p)) in serial
        .bootstrap_runtimes
        .iter()
        .zip(&parallel.bootstrap_runtimes)
        .enumerate()
    {
        assert_eq!(
            s.to_bits(),
            p.to_bits(),
            "{ctx}: bootstrap runtime {i} diverged ({s} vs {p})"
        );
    }
    assert_eq!(
        serial.mean_runtime.to_bits(),
        parallel.mean_runtime.to_bits(),
        "{ctx}: mean runtime diverged"
    );
    assert_eq!(
        serial.dynamic_instructions.to_bits(),
        parallel.dynamic_instructions.to_bits(),
        "{ctx}: dynamic instruction count diverged"
    );
    assert_eq!(
        serial.mean_interlocks.to_bits(),
        parallel.mean_interlocks.to_bits(),
        "{ctx}: mean interlocks diverged"
    );
}

/// The schedule itself must not depend on the thread budget either:
/// compilation is deterministic, so the instruction order per block is
/// the program's identity for this comparison.
fn schedule_fingerprint(prog: &CompiledProgram) -> Vec<String> {
    prog.blocks
        .iter()
        .map(|cb| format!("{:?}", cb.block.insts()))
        .collect()
}

#[test]
fn work_stealing_matches_serial_bit_for_bit() {
    let suite = perfect_club();
    let pipeline = Pipeline::default();
    let mem = MemorySystem::Cache(CacheModel::l80_5());
    let cfg = quick_cfg();

    // References are computed with the var unset so `evaluate_serial`
    // sees the same world regardless of the outer environment.
    let _clear = ThreadsGuard::set("1");

    for bench in &suite {
        for choice in [
            SchedulerChoice::balanced(),
            SchedulerChoice::traditional(Ratio::from_int(2)),
        ] {
            let prog = pipeline.compile(bench.function(), &choice).unwrap();
            let reference = evaluate_serial(&prog, &mem, &cfg);
            let shape = schedule_fingerprint(&prog);

            for threads in ["1", "2", "7"] {
                let _guard = ThreadsGuard::set(threads);
                let ctx = format!(
                    "{} / {} / BSCHED_THREADS={threads}",
                    bench.name(),
                    choice.name()
                );
                // Recompile under the thread budget: the schedule (and
                // hence every downstream number) must be unaffected.
                let reprog = pipeline.compile(bench.function(), &choice).unwrap();
                assert_eq!(
                    schedule_fingerprint(&reprog),
                    shape,
                    "{ctx}: compiled block shapes diverged"
                );
                let parallel = evaluate(&reprog, &mem, &cfg);
                assert_bits_eq(&reference, &parallel, &ctx);
            }
        }
    }
}

/// Same contract under a latency model with genuinely random draws
/// (network): parity must come from deterministic per-block streams,
/// not from the cache model happening to be latency-stable.
#[test]
fn parity_holds_under_network_latency() {
    let pipeline = Pipeline::default();
    let mem = MemorySystem::Network(NetworkModel::new(2.0, 5.0));
    let cfg = quick_cfg();
    let suite = perfect_club();
    let bench = &suite[0];
    let prog = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .unwrap();

    let serial = {
        let _guard = ThreadsGuard::set("1");
        evaluate_serial(&prog, &mem, &cfg)
    };
    let stolen = {
        let _guard = ThreadsGuard::set("7");
        evaluate(&prog, &mem, &cfg)
    };
    assert_bits_eq(&serial, &stolen, "network model, BSCHED_THREADS=7");
}
