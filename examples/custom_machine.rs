//! Evaluate the schedulers on a machine you define: pick a memory
//! system, a processor model and a register file, then sweep latency
//! uncertainty to find where balanced scheduling pays off.
//!
//! Run with: `cargo run --release --example custom_machine`

use balanced_scheduling::prelude::*;
use balanced_scheduling::workload::perfect;

fn main() {
    // A custom machine: a small 70%-hit-rate cache in front of slow DRAM,
    // a processor that allows four outstanding loads, and a cramped
    // register file.
    let mem = CacheModel::new(0.70, 2, 12);
    let processor = ProcessorModel::MaxOutstanding(4);
    let pipeline = Pipeline {
        allocator: AllocatorConfig {
            int_regs: 10,
            fp_regs: 14,
            pool_size: 3,
            policy: PoolPolicy::Fifo,
        },
        ..Pipeline::default()
    };

    println!(
        "Machine: {} cache, {processor}, 14 FP registers\n",
        LatencyModel::name(&mem)
    );

    let bench = perfect::mdg();
    let cfg = EvalConfig {
        processor,
        ..EvalConfig::default()
    };
    let balanced = pipeline
        .compile(bench.function(), &SchedulerChoice::balanced())
        .expect("compile");

    // Sweep the traditional scheduler's assumed latency: whatever it
    // assumes, it commits to; balanced commits only to the code's own
    // parallelism.
    println!(
        "{:>24} {:>12} {:>22}",
        "traditional assumes", "improvement", "95% CI"
    );
    for assumed in [2i64, 3, 4, 6, 12] {
        let traditional = pipeline
            .compile(
                bench.function(),
                &SchedulerChoice::traditional(Ratio::from_int(assumed)),
            )
            .expect("compile");
        let imp = compare(
            &evaluate(&traditional, &mem, &cfg),
            &evaluate(&balanced, &mem, &cfg),
        );
        println!(
            "{:>22}cy {:>11.1}% [{:>6.1}%, {:>6.1}%]",
            assumed, imp.mean_percent, imp.interval.low, imp.interval.high
        );
    }

    // Now vary the *machine's* uncertainty at a fixed traditional
    // assumption (the cache-hit time, as the paper does).
    println!("\nUncertainty sweep (traditional assumes 2 cycles):");
    println!(
        "{:>16} {:>12} {:>10} {:>10}",
        "memory system", "improvement", "TI%", "BI%"
    );
    let traditional = pipeline
        .compile(
            bench.function(),
            &SchedulerChoice::traditional(Ratio::from_int(2)),
        )
        .expect("compile");
    for miss in [4u64, 8, 16, 32] {
        let mem = CacheModel::new(0.70, 2, miss);
        let t = evaluate(&traditional, &mem, &cfg);
        let b = evaluate(&balanced, &mem, &cfg);
        let imp = compare(&t, &b);
        println!(
            "{:>16} {:>11.1}% {:>9.1}% {:>9.1}%",
            LatencyModel::name(&mem),
            imp.mean_percent,
            t.interlock_percent(),
            b.interlock_percent()
        );
    }
}
