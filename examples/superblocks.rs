//! §6 superblocks: enlarging the scheduling scope — and the register-
//! pressure trade-off that comes with it.
//!
//! Fusing blocks exposes more load-level parallelism per load, so the
//! balanced weights grow; whether that *helps* depends on whether the
//! register file can hold the extra in-flight values. This example
//! measures both sides of the trade.
//!
//! Run with: `cargo run --release --example superblocks`

use balanced_scheduling::prelude::*;
use balanced_scheduling::sched::BalancedWeights;
use balanced_scheduling::workload::{kernels, lower_kernel, superblocks_of};

fn max_load_weight(block: &BasicBlock) -> Ratio {
    let dag = build_dag(block, AliasModel::Fortran);
    let w = BalancedWeights::new().assign(&dag);
    dag.load_ids()
        .iter()
        .map(|&l| w.weight(l))
        .max()
        .unwrap_or(Ratio::ONE)
}

fn improvement(func: &Function, pipeline: &Pipeline) -> (f64, f64) {
    let mem = NetworkModel::new(2.0, 5.0);
    let cfg = EvalConfig::default();
    let bal = pipeline
        .compile(func, &SchedulerChoice::balanced())
        .expect("compile");
    let trad = pipeline
        .compile(func, &SchedulerChoice::traditional(Ratio::from_int(2)))
        .expect("compile");
    let imp = compare(&evaluate(&trad, &mem, &cfg), &evaluate(&bal, &mem, &cfg));
    (imp.mean_percent, bal.spill_percent())
}

fn main() {
    let base = Function::new(
        "loops",
        vec![
            lower_kernel(&kernels::daxpy().with_unroll(2), 100.0),
            lower_kernel(&kernels::stencil3().with_unroll(2), 100.0),
            lower_kernel(&kernels::dot().with_unroll(3), 100.0),
            lower_kernel(&kernels::matvec_row(), 100.0),
        ],
    );

    println!("Per-load balanced weight grows as blocks are fused:");
    for group in [1usize, 2, 4] {
        let fused = Function::new("fused", superblocks_of(&base, group));
        let max_w = fused.blocks().iter().map(max_load_weight).max().unwrap();
        let sizes: Vec<usize> = fused.blocks().iter().map(BasicBlock::len).collect();
        println!("  group {group}: block sizes {sizes:?}, max load weight {max_w}");
    }

    println!("\n…and the improvement depends on the register file:");
    println!(
        "{:>8} {:>10} {:>14} {:>12}",
        "group", "FP regs", "improvement", "bal spill%"
    );
    for fp_regs in [16u32, 32] {
        let pipeline = Pipeline {
            allocator: AllocatorConfig {
                fp_regs,
                ..AllocatorConfig::mips_default()
            },
            ..Pipeline::default()
        };
        for group in [1usize, 2, 4] {
            let fused = Function::new("fused", superblocks_of(&base, group));
            let (imp, spill) = improvement(&fused, &pipeline);
            println!("{group:>8} {fp_regs:>10} {imp:>13.1}% {spill:>11.2}%");
        }
    }
    println!(
        "\nWith a small file, fusion turns exposed parallelism into spills \
         (the §5 pressure effect); with a large file, fusion widens the win."
    );
}
