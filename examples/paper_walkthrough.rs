//! Walkthrough of the paper's §2–3 running examples: the Figure 1 DAG,
//! the three Figure 2 schedules, the Figure 3 interlock comparison, and
//! the Figure 4/5 parallel-loads example.
//!
//! Run with: `cargo run --example paper_walkthrough`

use balanced_scheduling::dag::{to_dot, CodeDag, DepKind};
use balanced_scheduling::ir::{Inst, MemAccess, MemLoc, Opcode, RegionId};
use balanced_scheduling::prelude::*;
use balanced_scheduling::sched::Direction;

fn load(name: &str) -> Inst {
    Inst::new(
        Opcode::Ldc1,
        vec![],
        vec![],
        Some(MemAccess::read(MemLoc::known(RegionId::new(0), 0))),
    )
    .with_name(name)
}

fn x(name: &str) -> Inst {
    Inst::new(Opcode::FMove, vec![], vec![], None).with_name(name)
}

/// Figure 1: L0 → L1 → X4 with X0..X3 independent.
fn figure1() -> CodeDag {
    let block = BasicBlock::new(
        "fig1",
        vec![
            load("L0"),
            load("L1"),
            x("X0"),
            x("X1"),
            x("X2"),
            x("X3"),
            x("X4"),
        ],
    );
    let mut dag = CodeDag::new(&block);
    dag.add_edge(InstId::new(0), InstId::new(1), DepKind::True);
    dag.add_edge(InstId::new(1), InstId::new(6), DepKind::True);
    dag
}

/// Figure 4: L0 and L1 independent, X4 consumes both, X0..X3 independent.
fn figure4() -> CodeDag {
    let block = BasicBlock::new(
        "fig4",
        vec![
            load("L0"),
            load("L1"),
            x("X0"),
            x("X1"),
            x("X2"),
            x("X3"),
            x("X4"),
        ],
    );
    let mut dag = CodeDag::new(&block);
    dag.add_edge(InstId::new(0), InstId::new(6), DepKind::True);
    dag.add_edge(InstId::new(1), InstId::new(6), DepKind::True);
    dag
}

fn show_schedule(dag: &CodeDag, title: &str, assigner: &dyn WeightAssigner) {
    let sched = ListScheduler::new()
        .with_direction(Direction::TopDown)
        .run(dag, assigner);
    let names: Vec<&str> = sched.order().iter().map(|&i| dag.name(i)).collect();
    println!("  {title:<18} {}", names.join(" "));
}

fn main() {
    let fig1 = figure1();
    println!(
        "Figure 1 code DAG (Graphviz):\n{}",
        to_dot(&fig1, "figure1")
    );

    // §3: weights on Figure 1 are 1 + 4/2 = 3 per load.
    let w = BalancedWeights::new().assign(&fig1);
    println!(
        "Balanced weights: L0 = {}, L1 = {}\n",
        w.weight(InstId::new(0)),
        w.weight(InstId::new(1))
    );

    println!("Figure 2 schedules (top-down, as illustrated in the paper):");
    show_schedule(
        &fig1,
        "greedy (w=5):",
        &TraditionalWeights::new(Ratio::from_int(5)),
    );
    show_schedule(&fig1, "lazy (w=1):", &TraditionalWeights::new(Ratio::ONE));
    show_schedule(&fig1, "balanced (w=3):", &BalancedWeights::new());

    // Figure 3: interlocks vs actual latency. We reuse the bench binary's
    // logic in miniature: schedule shapes are fixed, only latency varies.
    println!("\nFigure 3 (interlocks by actual latency) lives in:");
    println!("  cargo run --release -p bsched-bench --bin figure3");

    // Figure 4/5: independent loads share their padding set.
    let fig4 = figure4();
    let w4 = BalancedWeights::new().assign(&fig4);
    println!(
        "\nFigure 4 weights (parallel loads share the pad set): L0 = {}, L1 = {}",
        w4.weight(InstId::new(0)),
        w4.weight(InstId::new(1))
    );
    let sched = ListScheduler::new()
        .with_direction(Direction::TopDown)
        .run(&fig4, &BalancedWeights::new());
    let names: Vec<&str> = sched.order().iter().map(|&i| fig4.name(i)).collect();
    println!("Figure 5 schedule: {}", names.join(" "));
}
