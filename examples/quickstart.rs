//! Quickstart: schedule one basic block with both schedulers and see why
//! balanced scheduling wins when memory latency is uncertain.
//!
//! Run with: `cargo run --example quickstart`

use balanced_scheduling::prelude::*;
use balanced_scheduling::sched::compute_priorities;

fn main() {
    // A small numeric block mixing parallel and serial loads: x0 and x1
    // are independent; y0 chases a pointer loaded by x0 (loads in
    // series); the rest is a reduction tree. The serial/parallel mix is
    // exactly what distinguishes the two schedulers.
    let mut b = BlockBuilder::new("quickstart");
    let region = b.fresh_region();
    let base = b.def_int("base");
    let x0 = b.load_region("x0", region, base, Some(0));
    let x1 = b.load_region("x1", region, base, Some(8));
    let p = b.int_to_addr("p", x0); // address computed from x0's value
    let y0 = b.load_region("y0", region, p, Some(16));
    let s0 = b.fadd("s0", x1, y0);
    let s1 = b.fmul("s1", s0, s0);
    let total = b.fadd("total", s1, x1);
    b.store_region(region, total, base, Some(32));
    let block = b.finish();

    println!("Input block:\n{block}");

    // Build the code DAG and inspect the balanced weights.
    let dag = build_dag(&block, AliasModel::Fortran);
    let weights = BalancedWeights::new().assign(&dag);
    println!("Balanced load weights (1 + shared issue slots / chances):");
    for id in dag.load_ids() {
        println!("  {:6} -> {}", dag.name(id), weights.weight(id));
    }
    let priorities = compute_priorities(&dag, &weights);
    println!("Priorities (weight + max successor priority): {priorities:?}\n");

    // Schedule with both strategies.
    let scheduler = ListScheduler::new();
    let balanced = scheduler.run(&dag, &BalancedWeights::new());
    let traditional = scheduler.run(&dag, &TraditionalWeights::new(Ratio::from_int(2)));
    println!("Balanced schedule:\n{balanced}");
    println!("Traditional (w=2) schedule:\n{traditional}");

    // Execute both schedules under an uncertain memory system and compare.
    let mem = CacheModel::l80_10(); // 80% hits at 2 cycles, misses at 10
    let mut rng = Pcg32::seed_from_u64(42);
    let b_result = simulate_block(
        &balanced.apply(&block),
        &mem,
        ProcessorModel::Unlimited,
        &mut rng,
    );
    let mut rng = Pcg32::seed_from_u64(42);
    let t_result = simulate_block(
        &traditional.apply(&block),
        &mem,
        ProcessorModel::Unlimited,
        &mut rng,
    );
    println!(
        "Under {} (one sampled run, same seed):",
        LatencyModel::name(&mem)
    );
    println!("  balanced:    {b_result}");
    println!("  traditional: {t_result}");

    // The statistically sound comparison — the paper's full protocol —
    // on a realistic kernel (a 3-point stencil, unrolled 3×).
    let kernel = balanced_scheduling::workload::kernels::stencil3().with_unroll(3);
    let stencil = balanced_scheduling::workload::lower_kernel(&kernel, 1000.0);
    let func = Function::new("quickstart", vec![stencil]);
    let pipeline = Pipeline::default();
    let bal = pipeline
        .compile(&func, &SchedulerChoice::balanced())
        .expect("compile");
    let trad = pipeline
        .compile(&func, &SchedulerChoice::traditional(Ratio::from_int(2)))
        .expect("compile");
    let cfg = EvalConfig::default();
    let imp = compare(&evaluate(&trad, &mem, &cfg), &evaluate(&bal, &mem, &cfg));
    println!("\n30-run bootstrap comparison on an unrolled stencil: improvement {imp}");
}
