//! The §6 extensions: applying balanced scheduling beyond uncertain
//! loads.
//!
//! 1. **Known-latency loads**: "disabling balanced scheduling when the
//!    latency is known (e.g., for the second access to a cache line)" —
//!    pin such loads to their known latency while the rest stay balanced.
//! 2. **Other multi-cycle instructions**: "other multi-cycle instructions
//!    (e.g., floating point operations coupled with asynchronous floating
//!    point units)" — mark FP divides as uncertain-latency nodes and let
//!    the balanced weights cover them too.
//!
//! Run with: `cargo run --example extensions`

use balanced_scheduling::ir::Opcode;
use balanced_scheduling::prelude::*;
use balanced_scheduling::sched::BalancedWeights;

fn main() {
    // --- Extension 1: pinning known-latency loads -----------------------
    // Two loads hit the same cache line: the second is guaranteed to hit
    // (2 cycles). Pin it; balance the rest.
    let mut b = BlockBuilder::new("pinning");
    let region = b.fresh_region();
    let base = b.def_int("base");
    let first = b.load_region("first", region, base, Some(0));
    let second = b.load_region("second", region, base, Some(8)); // same line
    let far = b.load_region("far", region, base, Some(4096));
    let s = b.fadd("s", first, second);
    let t = b.fadd("t", s, far);
    b.store_region(region, t, base, Some(8192));
    let block = b.finish();
    let dag = build_dag(&block, AliasModel::Fortran);

    let second_id = block.load_ids()[1];
    let plain = BalancedWeights::new().assign(&dag);
    let pinned = BalancedWeights::new()
        .with_known_latency(second_id, Ratio::from_int(2))
        .assign(&dag);
    println!("Known-latency pinning:");
    for id in dag.load_ids() {
        println!(
            "  {:7} balanced weight {} -> pinned {}",
            dag.name(id),
            plain.weight(id),
            pinned.weight(id)
        );
    }

    // --- Extension 2: balancing asynchronous FP divides ------------------
    // Treat `div.d` as an uncertain-latency operation: mark the node
    // load-like, and the weight algorithm distributes parallelism over
    // it exactly as it does over loads.
    let mut b = BlockBuilder::new("fpdiv");
    let region = b.fresh_region();
    let base = b.def_int("base");
    let x = b.load_region("x", region, base, Some(0));
    let y = b.load_region("y", region, base, Some(8));
    let q = b.fdiv("q", x, y); // long-latency asynchronous divide
    let a = b.fconst("a", 1.0);
    let bb = b.fconst("b", 2.0);
    let c = b.fmul("c", a, bb);
    let d = b.fadd("d", c, c);
    let out = b.fadd("out", q, d);
    b.store_region(region, out, base, Some(16));
    let block = b.finish();

    let mut dag = build_dag(&block, AliasModel::Fortran);
    let div_id = block
        .iter_ids()
        .find(|(_, i)| i.opcode() == Opcode::FDiv)
        .map(|(id, _)| id)
        .expect("divide exists");

    let before = BalancedWeights::new().assign(&dag);
    dag.mark_load_like(div_id);
    let after = BalancedWeights::new().assign(&dag);
    println!("\nBalancing an asynchronous FP divide:");
    println!("  div.d weight before: {}", before.weight(div_id));
    println!(
        "  div.d weight after:  {} (now scheduled like an uncertain load)",
        after.weight(div_id)
    );

    let sched = ListScheduler::new().run_with_weights(&dag, &after);
    let names: Vec<&str> = sched.order().iter().map(|&i| dag.name(i)).collect();
    println!("  schedule: {}", names.join(" "));
    assert!(sched.verify(&dag).is_ok());

    // --- Extension 1 under a *real* cache ---------------------------------
    // With the address-tracking line cache, "second access to a cache
    // line" is a measurable event, not a thought experiment: pin every
    // load whose line was already touched earlier in the block and
    // compare against plain balanced scheduling.
    use balanced_scheduling::cpusim::simulate_block;
    use balanced_scheduling::memsim::LineCache;

    let mut b = BlockBuilder::new("lines");
    let region = b.fresh_region();
    let base = b.def_int("base");
    let mut vals = Vec::new();
    for k in 0..8i64 {
        // 8-byte loads over 32-byte lines: every second pair shares a line.
        vals.push(b.load_region(&format!("l{k}"), region, base, Some(8 * k)));
    }
    let mut acc = vals[0];
    for &v in &vals[1..] {
        acc = b.fadd("a", acc, v);
    }
    b.store_region(region, acc, base, Some(4096));
    let block = b.finish();
    let dag = build_dag(&block, AliasModel::Fortran);

    // Detect same-line second accesses (line size 32).
    let mut seen_lines = std::collections::HashSet::new();
    let mut pinned = BalancedWeights::new();
    let mut pin_count = 0;
    for (id, inst) in block.iter_ids() {
        if let Some(m) = inst.mem() {
            if inst.is_load() {
                if let Some(off) = m.loc().offset() {
                    if !seen_lines.insert((m.loc().region(), off.div_euclid(32))) {
                        pinned = pinned.with_known_latency(id, Ratio::from_int(2));
                        pin_count += 1;
                    }
                }
            }
        }
    }
    println!("\nLine-cache experiment: {pin_count} of 8 loads pinned as known hits");

    let cache = LineCache::new(32, 64, 2, 2, 12);
    let scheduler = ListScheduler::new();
    for (label, weights) in [
        ("plain balanced", BalancedWeights::new().assign(&dag)),
        ("pinned balanced", pinned.assign(&dag)),
    ] {
        let sched = scheduler.run_with_weights(&dag, &weights);
        let ordered = sched.apply(&block);
        let mut rng = Pcg32::seed_from_u64(1);
        let result = simulate_block(&ordered, &cache, ProcessorModel::Unlimited, &mut rng);
        println!("  {label:16} {result}");
    }
}
