//! Write a kernel in the mini-language and push it through the whole
//! compiler pipeline: lower → schedule → register-allocate → reschedule,
//! watching spill code appear and the schedulers diverge.
//!
//! Run with: `cargo run --release --example compiler_pipeline`

use balanced_scheduling::prelude::*;
use balanced_scheduling::workload::{
    kernel::{ArrayRef, Expr, Index, Kernel, Stmt},
    lower::lower_kernel,
};

fn main() {
    // A custom kernel: complex multiply-accumulate over two arrays,
    //   out[i] = a[i]*b[i] - a[i+1]*b[i+1]  (real part of complex product)
    //   unrolled 4x.
    let a = ArrayRef(0);
    let b = ArrayRef(1);
    let out = ArrayRef(2);
    let term = |k: i64| Expr::mul(Expr::Load(a, Index::Elem(k)), Expr::Load(b, Index::Elem(k)));
    let kernel = Kernel::new(
        "cmul",
        vec!["a", "b", "out"],
        vec![Stmt::Store(
            out,
            Index::Elem(0),
            Expr::sub(term(0), term(1)),
        )],
    )
    .with_stride(2)
    .with_unroll(3);

    let block = lower_kernel(&kernel, 1000.0);
    println!(
        "Lowered block ({} instructions, {} loads):",
        block.len(),
        block.load_ids().len()
    );
    println!("{block}");

    // Compile with both schedulers; a moderately cramped FP file lets
    // spill code appear without drowning the comparison in it.
    let pipeline = Pipeline {
        allocator: AllocatorConfig {
            int_regs: 8,
            fp_regs: 12,
            pool_size: 2,
            policy: PoolPolicy::Fifo,
        },
        ..Pipeline::default()
    };
    let func = Function::new("cmul", vec![block]);
    for choice in [
        SchedulerChoice::balanced(),
        SchedulerChoice::traditional(Ratio::from_int(2)),
    ] {
        let compiled = pipeline
            .compile(&func, &choice)
            .expect("register file too small");
        let cb = &compiled.blocks[0];
        println!(
            "--- {} ---\n{} instructions ({} spill), final code:",
            choice.name(),
            cb.block.len(),
            cb.spill_count
        );
        println!("{}", cb.block);
    }

    // Compare execution under the paper's mixed Alewife-like system.
    let mem = MixedModel::l80_n30_5();
    let cfg = EvalConfig::default();
    let balanced = pipeline
        .compile(&func, &SchedulerChoice::balanced())
        .expect("compile");
    let traditional = pipeline
        .compile(&func, &SchedulerChoice::traditional(Ratio::from_int(2)))
        .expect("compile");
    let imp = compare(
        &evaluate(&traditional, &mem, &cfg),
        &evaluate(&balanced, &mem, &cfg),
    );
    println!(
        "Under {}: balanced improves runtime by {imp}",
        LatencyModel::name(&mem)
    );
}
